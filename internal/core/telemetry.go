package core

import (
	"fmt"

	"tcpburst/internal/link"
	"tcpburst/internal/queue"
	"tcpburst/internal/sim"
	"tcpburst/internal/stats"
	"tcpburst/internal/tcp"
	"tcpburst/internal/telemetry"
)

// telem bundles one run's telemetry registry with the preregistered handle
// sets handed to each subsystem. A disabled run (TelemetryInterval == 0)
// carries a nil registry: every handle is then the zero value, every
// publication site a cheap no-op, and the simulation executes the exact
// event sequence it would without telemetry compiled in at all.
type telem struct {
	reg *telemetry.Registry

	link         link.Metrics
	tcp          tcp.Metrics
	red          queue.REDMetrics
	aqm          queue.Metrics
	drrEvictions telemetry.Counter
	appGenerated telemetry.Counter

	// cov accumulates per-RTT-window gateway arrival counts between
	// snapshots; nil when telemetry is disabled (so the arrival tap pays
	// one pointer test, same as the packet-log tap).
	cov *rttCOV

	sampler *telemetry.Sampler
	ring    *telemetry.Ring
}

// newTelem builds the registry and all subsystem handle sets, or an inert
// telem when cfg leaves telemetry disabled. It must run before the links,
// queues, and transports are constructed so the handles can ride in their
// configs.
func newTelem(cfg Config) *telem {
	t := &telem{}
	if cfg.TelemetryInterval <= 0 {
		return t
	}
	reg := telemetry.NewRegistry()
	t.reg = reg

	depthWidth := float64(cfg.BufferPackets) / 10
	if depthWidth < 1 {
		depthWidth = 1
	}
	t.link = link.Metrics{
		Arrivals:   reg.Counter("gw.arrivals"),
		Drops:      reg.Counter("gw.drops"),
		Departures: reg.Counter("gw.departures"),
		QueueDepth: reg.Histogram("gw.depth", depthWidth, 10),
	}
	t.tcp = tcp.Metrics{
		DataSent:        reg.Counter("tcp.data_sent"),
		Retransmits:     reg.Counter("tcp.retransmits"),
		Timeouts:        reg.Counter("tcp.timeouts"),
		FastRetransmits: reg.Counter("tcp.fast_rtx"),
		Delivered:       reg.Counter("tcp.delivered"),
		AcksSent:        reg.Counter("tcp.acks"),
	}
	if cfg.Gateway == RED {
		t.red = queue.REDMetrics{
			EarlyDrops:  reg.Counter("red.early_drops"),
			ForcedDrops: reg.Counter("red.forced_drops"),
			Marks:       reg.Counter("red.marks"),
		}
	}
	if cfg.Gateway == DRR {
		t.drrEvictions = reg.Counter("drr.evictions")
	}
	if cfg.Queue != nil {
		// Registry-built disciplines publish through the generic handle
		// set; which handles move depends on the discipline (CoDel never
		// sheds, a token bucket never marks).
		t.aqm = queue.Metrics{
			EarlyDrops:  reg.Counter("aqm.early_drops"),
			ForcedDrops: reg.Counter("aqm.forced_drops"),
			Marks:       reg.Counter("aqm.marks"),
			Shed:        reg.Counter("aqm.shed"),
			Evictions:   reg.Counter("aqm.evictions"),
		}
	}
	t.appGenerated = reg.Counter("app.generated")
	t.cov = newRTTCOV(cfg.RTT())
	return t
}

// enabled reports whether this run publishes telemetry.
func (t *telem) enabled() bool { return t.reg != nil }

// probeEnv says which live simulation objects this shard's registry may
// read. Probes run on the shard's own goroutine during windows, so a
// registry may only touch state its shard owns: foreign probes register
// under the same names with zero-returning functions instead. That keeps
// the column set (and its order) identical on every shard, which is what
// lets finishTelemetry merge per-shard snapshot rows by elementwise sum —
// every column has exactly one owning shard, so real + zeros = real.
type probeEnv struct {
	// sched is this shard's scheduler; sim.events reads its Fired count,
	// so the merged column is the total across shards.
	sched *sim.Scheduler
	// bottleneck is non-nil only on the gateway shard, which owns
	// queue.depth, gw.util, and the cov.rtt accumulator.
	bottleneck *link.Link
	flows      []*flow
	// shard and clientShard decide which cwnd/ssthresh probes are local.
	shard       int
	clientShard []int
	// sink, when non-nil, overrides the configured sink — sharded runs
	// sample into private per-shard rings and merge after the run.
	sink telemetry.Sink
}

// start registers the probes that need live simulation objects, resolves
// the sink, and starts the periodic sampler. Call it after the topology is
// built and before the scheduler runs.
func (t *telem) start(cfg Config, env probeEnv) error {
	if !t.enabled() {
		return nil
	}
	reg := t.reg
	zero := func() float64 { return 0 }

	if b := env.bottleneck; b != nil {
		reg.Probe("queue.depth", func() float64 {
			return float64(b.QueueLen())
		})
		// Bottleneck utilization over the last sampling interval, from the
		// delivered-bytes delta.
		intervalBits := cfg.BottleneckRateBps * cfg.TelemetryInterval.Seconds()
		var prevBytes uint64
		reg.Probe("gw.util", func() float64 {
			cur := b.Stats().DeliveredBytes
			delta := cur - prevBytes
			prevBytes = cur
			if intervalBits <= 0 {
				return 0
			}
			return float64(delta) * 8 / intervalBits
		})
	} else {
		reg.Probe("queue.depth", zero)
		reg.Probe("gw.util", zero)
	}
	sched := env.sched
	reg.Probe("sim.events", func() float64 {
		return float64(sched.Fired())
	})
	if env.bottleneck != nil {
		cov := t.cov
		reg.Probe("cov.rtt", func() float64 {
			return cov.sample(sched.Now())
		})
	} else {
		reg.Probe("cov.rtt", zero)
	}
	// Per-flow window probes for the same clients cwnd tracing would pick.
	targets := cfg.TraceClients
	if len(targets) == 0 {
		targets = defaultTraceClients(cfg.Clients)
	}
	for _, idx := range targets {
		sender := env.flows[idx-1].tcpSend
		if sender == nil {
			continue // UDP clients have no window to publish
		}
		if env.clientShard[idx-1] == env.shard {
			reg.Probe(fmt.Sprintf("cwnd.client%d", idx), sender.Cwnd)
			reg.Probe(fmt.Sprintf("ssthresh.client%d", idx), sender.Ssthresh)
		} else {
			reg.Probe(fmt.Sprintf("cwnd.client%d", idx), zero)
			reg.Probe(fmt.Sprintf("ssthresh.client%d", idx), zero)
		}
	}

	sink := env.sink
	if sink == nil {
		sink = cfg.TelemetrySink
		if cfg.TelemetrySinkFactory != nil {
			sink = cfg.TelemetrySinkFactory(cfg)
		}
		if sink == nil {
			t.ring = telemetry.NewRing(int(cfg.Duration/cfg.TelemetryInterval) + 2)
			sink = t.ring
		}
	}
	sampler, err := telemetry.NewSampler(env.sched, reg, cfg.TelemetryInterval, sink)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := sampler.Start(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	t.sampler = sampler
	return nil
}

// startTelemetry starts the per-shard samplers. Serial runs stream to the
// configured sink directly; sharded runs stream each shard into a private
// ring on the same virtual tick grid, merged into the configured sink by
// finishTelemetry after the run. Returns the private rings (nil serial).
func startTelemetry(cfg Config, env *buildEnv, bottleneck *link.Link, flows []*flow) ([]*telemetry.Ring, error) {
	if env.group == nil {
		return nil, env.tels[0].start(cfg, probeEnv{
			sched:       env.scheds[0],
			bottleneck:  bottleneck,
			flows:       flows,
			clientShard: env.place.client,
		})
	}
	if !env.tels[0].enabled() {
		return nil, nil
	}
	capacity := int(cfg.Duration/cfg.TelemetryInterval) + 2
	rings := make([]*telemetry.Ring, env.place.k)
	for s := range rings {
		rings[s] = telemetry.NewRing(capacity)
		pe := probeEnv{
			sched:       env.scheds[s],
			flows:       flows,
			shard:       s,
			clientShard: env.place.client,
			sink:        rings[s],
		}
		if s == env.place.gw {
			pe.bottleneck = bottleneck
		}
		if err := env.tels[s].start(cfg, pe); err != nil {
			return nil, err
		}
	}
	return rings, nil
}

// finishTelemetry closes the samplers and records the run's telemetry into
// res. Sharded runs merge the per-shard rings: rows on the same virtual
// tick sum elementwise (every column has one owning shard), the merged
// rows stream to the configured sink, and the per-shard registry exports
// sum map-wise. One caveat is inherent to sharding: each shard runs its
// own sampler event per tick, so SimEvents (and the sim.events column)
// count K sampler pops per interval instead of one — which is why the
// byte-identity and golden tests pin sharded runs with telemetry off.
func finishTelemetry(cfg Config, env *buildEnv, rings []*telemetry.Ring, res *Result) error {
	if env.group == nil {
		return env.tels[0].finish(res)
	}
	if rings == nil {
		return nil
	}
	for _, t := range env.tels {
		t.sampler.Sample()
		if err := t.sampler.Close(); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	n := rings[0].Len()
	for s, r := range rings {
		if uint64(r.Len()) != env.tels[s].sampler.Records() {
			return fmt.Errorf("telemetry: shard %d ring overflowed (%d rows kept of %d)", s, r.Len(), env.tels[s].sampler.Records())
		}
		if r.Len() != n {
			return fmt.Errorf("telemetry: shard %d recorded %d rows, shard 0 %d", s, r.Len(), n)
		}
	}

	sink := cfg.TelemetrySink
	if cfg.TelemetrySinkFactory != nil {
		sink = cfg.TelemetrySinkFactory(cfg)
	}
	var ring *telemetry.Ring
	if sink == nil {
		ring = telemetry.NewRing(n + 1)
		sink = ring
	}
	if err := sink.Begin(rings[0].Fields()); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	row := make([]float64, len(rings[0].Fields()))
	for i := 0; i < n; i++ {
		t0, r0 := rings[0].At(i)
		copy(row, r0)
		for s := 1; s < len(rings); s++ {
			ts, rs := rings[s].At(i)
			if ts != t0 { //burst:floateq-ok identical tick grids produce identical float timestamps
				return fmt.Errorf("telemetry: shard %d tick %v diverges from shard 0 tick %v", s, ts, t0)
			}
			for j, v := range rs {
				row[j] += v
			}
		}
		if err := sink.Record(t0, row); err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
	}
	if err := sink.Flush(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}

	merged := env.tels[0].reg.Export()
	for _, t := range env.tels[1:] {
		e := t.reg.Export()
		for k, v := range e.Counters {
			merged.Counters[k] += v
		}
		for k, v := range e.Gauges {
			merged.Gauges[k] += v
		}
		for k, v := range e.Histograms {
			merged.Histograms[k] += v
		}
	}
	res.Telemetry = &merged
	res.TelemetryRecords = uint64(n)
	res.TelemetryRing = ring
	return nil
}

// finish takes the final off-grid snapshot (a no-op when the horizon lands
// on a tick), closes the stream, and records the registry's final state
// into res. The sink's first error surfaces here: a run whose telemetry
// stream failed is a failed run.
func (t *telem) finish(res *Result) error {
	if t.sampler == nil {
		return nil
	}
	t.sampler.Sample()
	if err := t.sampler.Close(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	export := t.reg.Export()
	res.Telemetry = &export
	res.TelemetryRecords = t.sampler.Records()
	res.TelemetryRing = t.ring
	return nil
}

// rttCOV tracks the paper's burstiness measure as a live time series: data
// arrivals at the gateway land in RTT-sized bins, and each telemetry
// snapshot reads the coefficient of variation of the bins completed since
// the previous snapshot, then resets — so the "cov.rtt" column shows
// congestion-control modulation developing during a run rather than one
// whole-run number.
type rttCOV struct {
	window    sim.Duration
	windowEnd sim.Time
	count     float64
	w         stats.Welford
	last      float64
}

func newRTTCOV(window sim.Duration) *rttCOV {
	return &rttCOV{window: window, windowEnd: sim.TimeZero.Add(window)}
}

// roll closes every bin that ends at or before now, recording zeros for
// empty ones (matching stats.WindowCounter's binning).
func (c *rttCOV) roll(now sim.Time) {
	for !now.Before(c.windowEnd) {
		c.w.Add(c.count)
		c.count = 0
		c.windowEnd = c.windowEnd.Add(c.window)
	}
}

// observe records one data-packet arrival.
func (c *rttCOV) observe(now sim.Time) {
	c.roll(now)
	c.count++
}

// sample returns the c.o.v. of the bins completed since the last sample.
// Intervals too short to close two bins hold the previous value instead of
// collapsing to zero.
func (c *rttCOV) sample(now sim.Time) float64 {
	c.roll(now)
	if c.w.Count() >= 2 {
		c.last = c.w.COV()
		c.w = stats.Welford{}
	}
	return c.last
}
