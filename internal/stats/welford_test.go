package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestWelfordKnownValues(t *testing.T) {
	w := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if w.Count() != 8 {
		t.Errorf("Count = %d, want 8", w.Count())
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almostEqual(w.PopVariance(), 4, 1e-12) {
		t.Errorf("PopVariance = %v, want 4", w.PopVariance())
	}
	if !almostEqual(w.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want 32/7", w.Variance())
	}
	if !almostEqual(w.COV(), math.Sqrt(32.0/7)/5, 1e-12) {
		t.Errorf("COV = %v", w.COV())
	}
}

func TestWelfordEdgeCases(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.COV() != 0 || w.StdDev() != 0 {
		t.Error("empty accumulator must be all zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single value: mean=%v var=%v", w.Mean(), w.Variance())
	}
	// Zero mean: COV defined as 0 to avoid division by zero.
	z := Summarize([]float64{-1, 1})
	if z.COV() != 0 {
		t.Errorf("zero-mean COV = %v, want 0", z.COV())
	}
}

func TestWelfordMatchesNaiveComputation(t *testing.T) {
	prop := func(xs []float64) bool {
		// Constrain magnitudes to keep the naive two-pass method stable.
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		if len(xs) < 2 {
			return true
		}
		w := Summarize(xs)
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naiveVar))
		return almostEqual(w.Mean(), mean, 1e-9*math.Max(1, math.Abs(mean))) &&
			almostEqual(w.Variance(), naiveVar, 1e-6*scale)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeMatchesCombined(t *testing.T) {
	prop := func(a, b []float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1e6)
		}
		for i := range b {
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			b[i] = math.Mod(b[i], 1e6)
		}
		wa, wb := Summarize(a), Summarize(b)
		wa.Merge(wb)
		combined := Summarize(append(append([]float64{}, a...), b...))
		if wa.Count() != combined.Count() {
			return false
		}
		if wa.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(combined.Variance()))
		return almostEqual(wa.Mean(), combined.Mean(), 1e-7*math.Max(1, math.Abs(combined.Mean()))) &&
			almostEqual(wa.Variance(), combined.Variance(), 1e-6*scale)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPoissonAggregateCOV(t *testing.T) {
	// Counts over T from n Poisson(λ) sources are Poisson(nλT):
	// c.o.v. = 1/sqrt(nλT).
	if got := PoissonAggregateCOV(20, 100, 0.044); !almostEqual(got, 1/math.Sqrt(88), 1e-12) {
		t.Errorf("PoissonAggregateCOV = %v", got)
	}
	if got := PoissonAggregateCOV(0, 100, 1); got != 0 {
		t.Errorf("zero sources: %v, want 0", got)
	}
	if got := PoissonAggregateCOV(10, 0, 1); got != 0 {
		t.Errorf("zero rate: %v, want 0", got)
	}
	// More sources → smoother: strictly decreasing in n.
	prev := math.Inf(1)
	for n := 1; n <= 60; n++ {
		cov := PoissonAggregateCOV(n, 100, 0.044)
		if cov >= prev {
			t.Fatalf("analytic c.o.v. not decreasing at n=%d", n)
		}
		prev = cov
	}
}

func TestCOVAgainstSimulatedPoisson(t *testing.T) {
	// Empirical check: synthetic Poisson counts match the analytic curve.
	// Use a deterministic LCG to avoid importing math/rand here.
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / float64(1<<53)
	}
	const lam = 30.0 // mean events per window
	counts := make([]float64, 20000)
	for i := range counts {
		// Poisson via inversion of exponential gaps.
		n, acc := 0, 0.0
		for {
			u := next()
			for u == 0 {
				u = next()
			}
			acc += -math.Log(u) / lam
			if acc > 1 {
				break
			}
			n++
		}
		counts[i] = float64(n)
	}
	got := COV(counts)
	want := 1 / math.Sqrt(lam)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("simulated Poisson c.o.v. = %v, want ~%v", got, want)
	}
}

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"equal shares", []float64{5, 5, 5, 5}, 1},
		{"one hog", []float64{1, 0, 0, 0}, 0.25},
		{"empty", nil, 0},
		{"all zero", []float64{0, 0}, 0},
		{"two-to-one", []float64{2, 1}, 9.0 / 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := JainIndex(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("JainIndex(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestJainIndexBoundsProperty(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Abs(math.Mod(x, 1e6)))
			}
		}
		if len(clean) == 0 {
			return true
		}
		j := JainIndex(clean)
		return j >= 0 && j <= 1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := Correlation(x, x); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self-correlation = %v, want 1", got)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if got := Correlation(x, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("anti-correlation = %v, want -1", got)
	}
	if got := Correlation(x, []float64{2, 4, 6, 8, 10}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("scaled correlation = %v, want 1", got)
	}
	// Degenerate inputs.
	if Correlation(x, x[:3]) != 0 {
		t.Error("mismatched lengths must return 0")
	}
	if Correlation([]float64{1}, []float64{2}) != 0 {
		t.Error("single point must return 0")
	}
	if Correlation(x, []float64{7, 7, 7, 7, 7}) != 0 {
		t.Error("constant series must return 0")
	}
}

func TestCorrelationIndependentNearZero(t *testing.T) {
	a := whiteNoise(8192, 21)
	b := whiteNoise(8192, 22)
	if got := Correlation(a, b); math.Abs(got) > 0.05 {
		t.Errorf("independent noise correlation = %v, want ~0", got)
	}
}

func TestMeanPairwiseCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	z := []float64{4, 3, 2, 1}
	// Pairs: (x,y)=1, (x,z)=-1, (y,z)=-1 → mean -1/3.
	got := MeanPairwiseCorrelation([][]float64{x, y, z})
	if !almostEqual(got, -1.0/3, 1e-12) {
		t.Errorf("mean pairwise = %v, want -1/3", got)
	}
	if MeanPairwiseCorrelation([][]float64{x}) != 0 {
		t.Error("single series must return 0")
	}
	if MeanPairwiseCorrelation(nil) != 0 {
		t.Error("nil must return 0")
	}
}
