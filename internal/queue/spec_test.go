package queue

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in     string
		name   string
		params map[string]string
	}{
		{"fifo", "fifo", nil},
		{"red?ecn=true", "red", map[string]string{"ecn": "true"}},
		{"codel?target=5ms&interval=100ms", "codel",
			map[string]string{"target": "5ms", "interval": "100ms"}},
		{"tokenbucket?rate=3000&burst=60&perflow=true", "tokenbucket",
			map[string]string{"rate": "3000", "burst": "60", "perflow": "true"}},
	}
	for _, tc := range cases {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if spec.Name != tc.name {
			t.Errorf("ParseSpec(%q).Name = %q, want %q", tc.in, spec.Name, tc.name)
		}
		if len(spec.Params) != len(tc.params) {
			t.Errorf("ParseSpec(%q).Params = %v, want %v", tc.in, spec.Params, tc.params)
			continue
		}
		for k, v := range tc.params {
			if spec.Params[k] != v {
				t.Errorf("ParseSpec(%q).Params[%q] = %q, want %q", tc.in, k, spec.Params[k], v)
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in     string
		substr string
	}{
		{"", "empty discipline name"},
		{"?target=5ms", "empty discipline name"},
		{"red=ecn", "malformed name"},
		{"a&b", "malformed name"},
		{"codel?", "'?' with no parameters"},
		{"codel?target", "not key=value"},
		{"codel?=5ms", "not key=value"},
		{"codel?target=1ms&target=2ms", "duplicate parameter"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("ParseSpec(%q) error = %v, want mention of %q", tc.in, err, tc.substr)
		}
	}
}

// TestSpecStringCanonical checks that String sorts parameters, so two specs
// differing only in key order render — and hence label and cache — the same.
func TestSpecStringCanonical(t *testing.T) {
	a, err := ParseSpec("codel?target=5ms&interval=100ms")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec("codel?interval=100ms&target=5ms")
	if err != nil {
		t.Fatal(err)
	}
	const want = "codel?interval=100ms&target=5ms"
	if a.String() != want || b.String() != want {
		t.Errorf("String() = %q / %q, want both %q", a, b, want)
	}
	// Round trip: parsing the canonical form reproduces it.
	c, err := ParseSpec(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != want {
		t.Errorf("round trip = %q, want %q", c, want)
	}
	if bare := (Spec{Name: "fifo"}); bare.String() != "fifo" {
		t.Errorf("bare spec String() = %q, want fifo", bare)
	}
}

func TestSpecClone(t *testing.T) {
	orig, err := ParseSpec("red?ecn=true")
	if err != nil {
		t.Fatal(err)
	}
	cl := orig.Clone()
	cl.Params["ecn"] = "false"
	cl.Params["gentle"] = "true"
	if orig.Params["ecn"] != "true" || len(orig.Params) != 1 {
		t.Errorf("Clone aliased the original: %v", orig.Params)
	}
}

func TestSpecLower(t *testing.T) {
	cases := []struct {
		in   string
		want Legacy
		ok   bool
	}{
		{"fifo", Legacy{Kind: "fifo"}, true},
		{"drr", Legacy{Kind: "drr"}, true},
		{"red", Legacy{Kind: "red"}, true},
		{"red?ecn=true", Legacy{Kind: "red", ECN: true}, true},
		{"red?gentle=true&ecn=false", Legacy{Kind: "red", Gentle: true}, true},
		{"red?min=5&max=15&weight=0.01&maxprob=0.2",
			Legacy{Kind: "red", Min: 5, Max: 15, Weight: 0.01, MaxProb: 0.2}, true},
		// Explicit zero cannot be told apart from "unset" in the flat
		// fields, so it must not lower.
		{"red?min=0", Legacy{}, false},
		// Keys outside the legacy vocabulary run through the registry.
		{"red?target=5ms", Legacy{}, false},
		{"red?ecn=notabool", Legacy{}, false},
		// Parameterized fifo/drr and every new discipline never lower.
		{"fifo?x=1", Legacy{}, false},
		{"codel", Legacy{}, false},
		{"pie?target=15ms", Legacy{}, false},
		{"tokenbucket?rate=3000", Legacy{}, false},
	}
	for _, tc := range cases {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		got, ok := spec.Lower()
		if ok != tc.ok || got != tc.want {
			t.Errorf("Lower(%q) = %+v, %v; want %+v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}
