package tcp

import "unsafe"

// Struct footprints for the StateBytes accounting. unsafe.Sizeof is a
// compile-time constant, so this costs nothing at runtime.
const (
	senderStructBytes = unsafe.Sizeof(Sender{})
	segmentBytes      = unsafe.Sizeof(segment{})
	sinkStructBytes   = unsafe.Sizeof(Sink{})
)
