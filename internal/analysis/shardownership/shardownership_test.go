package shardownership_test

import (
	"testing"

	"tcpburst/internal/analysis/analysistest"
	"tcpburst/internal/analysis/shardownership"
)

func TestShardOwnership(t *testing.T) {
	analysistest.Run(t, shardownership.Analyzer, "testdata/src",
		"example.com/rogue",
		"tcpburst/internal/core",
		"tcpburst/internal/link",
	)
}
