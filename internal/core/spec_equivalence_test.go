package core

import (
	"encoding/json"
	"strings"
	"testing"

	"tcpburst/internal/queue"
	"tcpburst/internal/runcache"
)

// TestSpecLowersToLegacyConfig proves the deprecation shim: a config built
// through the new spec API for a legacy discipline is byte-identical, after
// defaulting, to the same config built through the deprecated enum — which
// is what keeps golden digests and run-cache keys unchanged.
func TestSpecLowersToLegacyConfig(t *testing.T) {
	cases := []struct {
		spec   string
		legacy func() Config
	}{
		{"fifo", func() Config { return DefaultConfig(20, Reno, FIFO) }},
		{"red", func() Config { return DefaultConfig(20, Reno, RED) }},
		{"drr", func() Config { return DefaultConfig(20, Reno, DRR) }},
		{"red?ecn=true", func() Config {
			c := DefaultConfig(39, Vegas, RED)
			c.REDECN = true
			return c
		}},
		{"red?min=5&max=15&gentle=true", func() Config {
			c := DefaultConfig(20, Reno, RED)
			c.REDMinThreshold = 5
			c.REDMaxThreshold = 15
			c.REDGentle = true
			return c
		}},
	}
	for _, tc := range cases {
		legacy := tc.legacy().WithDefaults()

		viaSpec := tc.legacy()
		viaSpec.Gateway = 0
		viaSpec.REDECN = false
		viaSpec.REDGentle = false
		viaSpec.REDMinThreshold = 0
		viaSpec.REDMaxThreshold = 0
		spec, err := queue.ParseSpec(tc.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		viaSpec.Queue = &spec
		defaulted := viaSpec.WithDefaults()

		a, err := json.Marshal(legacy)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(defaulted)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("spec %q does not lower to the legacy encoding:\nlegacy: %s\nspec:   %s", tc.spec, a, b)
		}
		if strings.Contains(string(a), `"Queue"`) {
			t.Errorf("legacy encoding leaks a Queue key: %s", a)
		}
		ka, err := runcache.Key(resultCacheKind(legacy), legacy)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := runcache.Key(resultCacheKind(defaulted), defaulted)
		if err != nil {
			t.Fatal(err)
		}
		if ka != kb {
			t.Errorf("spec %q cache key %s != legacy key %s", tc.spec, kb, ka)
		}
	}
}

// TestLegacyCacheKeysPinned pins the run-cache keys of the legacy golden
// cells to their pre-registry values. If one of these moves, previously
// cached results (and the golden digest table) are silently orphaned —
// which is exactly the regression the registry redesign promised not to
// cause.
func TestLegacyCacheKeysPinned(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{DefaultConfig(20, Reno, FIFO),
			"438f9e2ed7f3ed6c019e9cc5282f28df7d9841c7bd8f04248e321601f6b47784"},
		{DefaultConfig(20, Reno, RED),
			"7e3b4250b2dfdbee7fcba8d046335f97da57abac25edca75d934551a108c13c4"},
		{DefaultConfig(20, Reno, DRR),
			"2f36227c22b04260828652de3c19df045edfdea3409411b3d22282ea0b35f210"},
		{func() Config {
			c := DefaultConfig(39, Vegas, RED)
			c.REDECN = true
			return c
		}(), "3926f48995324497751f9719e612d911a882443130cfdbb647cbe9a894ee54f2"},
	}
	for _, tc := range cases {
		cfg := tc.cfg.WithDefaults()
		got, err := runcache.Key(resultCacheKind(cfg), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: cache key %s, want pinned %s", cfg.Label(), got, tc.want)
		}
	}
}

// TestConfigRejectsBothDisciplineForms checks that setting the deprecated
// enum and a non-lowerable spec together is a validation error rather than
// one silently winning.
func TestConfigRejectsBothDisciplineForms(t *testing.T) {
	cfg := DefaultConfig(10, Reno, RED)
	spec := queue.Spec{Name: "codel"}
	cfg.Queue = &spec
	err := cfg.WithDefaults().Validate()
	if err == nil || !strings.Contains(err.Error(), "pick one discipline") {
		t.Errorf("Validate() = %v, want both-set rejection", err)
	}
}

// TestConfigValidatesSpecAtConfigTime checks that a bad spec surfaces from
// Validate with the registry's self-explaining error, not from deep inside
// a run.
func TestConfigValidatesSpecAtConfigTime(t *testing.T) {
	cases := []struct {
		spec   string
		substr string
	}{
		{"wred", "unknown discipline"},
		{"codel?targit=1ms", `unknown parameter "targit"`},
		{"tokenbucket", "rate"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig(10, Reno, 0)
		spec, err := queue.ParseSpec(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Gateway = 0
		cfg.Queue = &spec
		err = cfg.WithDefaults().Validate()
		if err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("Validate(%q) = %v, want mention of %q", tc.spec, err, tc.substr)
		}
	}
}

// TestWithGatewayDisciplineOption checks the functional-option entry point:
// the spec is cloned (no aliasing) and clears the deprecated enum.
func TestWithGatewayDisciplineOption(t *testing.T) {
	spec, err := queue.ParseSpec("codel?target=2ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfig(WithClients(10), WithProtocol(Reno), WithGatewayDiscipline(spec))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gateway != 0 || cfg.Queue == nil || cfg.Queue.String() != "codel?target=2ms" {
		t.Fatalf("WithGatewayDiscipline: Gateway=%v Queue=%v", cfg.Gateway, cfg.Queue)
	}
	spec.Params["target"] = "9ms"
	if cfg.Queue.Params["target"] != "2ms" {
		t.Error("option aliased the caller's spec map")
	}

	opt, err := ParseDiscipline("pie?ecn=true")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err = NewConfig(WithClients(10), WithProtocol(Reno), opt)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.QueueName() != "pie?ecn=true" {
		t.Errorf("ParseDiscipline QueueName = %q", cfg.QueueName())
	}
	// ParseDiscipline rejects malformed syntax immediately; unknown names
	// parse (any bare word is grammatical) and fail later in Validate.
	if _, err := ParseDiscipline("codel?"); err == nil {
		t.Error("ParseDiscipline accepted a dangling '?'")
	}
	if opt, err := ParseDiscipline("no-such-queue"); err != nil {
		t.Errorf("ParseDiscipline rejected a grammatical name: %v", err)
	} else if _, err := NewConfig(WithClients(10), WithProtocol(Reno), opt); err == nil {
		t.Error("NewConfig accepted an unknown discipline")
	}
}

// TestSpecConfigRoundTripsThroughJSON checks that a registry config
// serializes and reloads with its spec intact — sweep manifests and cached
// summaries depend on it.
func TestSpecConfigRoundTripsThroughJSON(t *testing.T) {
	opt, err := ParseDiscipline("tokenbucket?burst=30&rate=3500")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := NewConfig(WithClients(10), WithProtocol(Reno), opt)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.QueueName() != "tokenbucket?burst=30&rate=3500" {
		t.Errorf("round-tripped QueueName = %q", back.QueueName())
	}
}
