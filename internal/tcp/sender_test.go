package tcp

import (
	"strings"
	"testing"
	"time"

	"tcpburst/internal/packet"
	"tcpburst/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	sched := sim.NewScheduler()
	out := &pipe{sched: sched}
	cases := []struct {
		name   string
		mutate func(*Config)
		substr string
	}{
		{"nil scheduler", func(c *Config) { c.Sched = nil }, "scheduler"},
		{"nil wire", func(c *Config) { c.Out = nil }, "wire"},
		{"bad variant", func(c *Config) { c.Variant = Variant(99) }, "variant"},
		{"negative packet size", func(c *Config) { c.PacketSize = -1 }, "packet size"},
		{"negative window", func(c *Config) { c.MaxWindow = -1 }, "max window"},
		{"min RTO above max", func(c *Config) { c.MinRTO = time.Hour; c.MaxRTO = time.Second }, "RTO"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Variant: Reno, Sched: sched, Out: out}
			tc.mutate(&cfg)
			if _, err := NewSender(cfg); err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("NewSender error = %v, want mention of %q", err, tc.substr)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := newConn(t, Reno, nil)
	if got := c.sender.Cwnd(); got != 1 {
		t.Errorf("initial cwnd = %v, want 1", got)
	}
	if got := c.sender.Ssthresh(); got != 20 {
		t.Errorf("initial ssthresh = %v, want MaxWindow (20)", got)
	}
	if got := c.sender.RTO(); got != time.Second {
		t.Errorf("initial RTO = %v, want 1s", got)
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(1000) // deep backlog: purely window-limited
	// RTT is 20 ms; the run horizon is inclusive, so the k-th boundary has
	// already processed the ACK burst arriving exactly at k·RTT. The
	// cumulative transmissions therefore follow 2^(k+1) - 1.
	var cumulative []int
	for i := 0; i < 4; i++ {
		c.run(t, 20*time.Millisecond)
		cumulative = append(cumulative, c.fwd.dataSent())
	}
	want := []int{3, 7, 15, 31}
	for i := range want {
		if cumulative[i] != want[i] {
			t.Fatalf("slow-start cumulative sends %v, want %v", cumulative, want)
		}
	}
}

func TestSlowStartCapsAtAdvertisedWindow(t *testing.T) {
	c := newConn(t, Reno, func(cfg *Config) { cfg.MaxWindow = 6 })
	c.submit(1000)
	c.run(t, time.Second)
	if got := c.sender.Cwnd(); got != 6 {
		t.Errorf("cwnd = %v, want clamp at 6", got)
	}
	// In-flight never exceeded the advertised window: with RTT 20ms, at
	// most 6 packets per RTT after the ramp → well under 300 in 1s.
	if sent := c.fwd.dataSent(); sent > 300 {
		t.Errorf("sent %d packets in 1s, window clamp broken", sent)
	}
}

func TestCongestionAvoidanceGrowsLinearly(t *testing.T) {
	c := newConn(t, Reno, func(cfg *Config) {
		cfg.InitialCwnd = 4
		cfg.InitialSsthresh = 4 // start directly in congestion avoidance
	})
	c.submit(10000)
	c.run(t, 100*time.Millisecond) // 5 RTTs
	// cwnd should have grown by roughly +1 per RTT: 4 → ~9.
	got := c.sender.Cwnd()
	if got < 7 || got > 11 {
		t.Errorf("cwnd after 5 RTTs of CA = %v, want ~9", got)
	}
}

func TestFlightSizeNeverExceedsWindow(t *testing.T) {
	c := newConn(t, Reno, func(cfg *Config) { cfg.MaxWindow = 8 })
	c.submit(500)
	for i := 0; i < 100; i++ {
		c.run(t, 5*time.Millisecond)
		if f := c.sender.FlightSize(); f > 8 {
			t.Fatalf("flight size %d exceeds advertised window 8", f)
		}
	}
}

func TestReliableDeliveryNoLoss(t *testing.T) {
	for _, v := range []Variant{Tahoe, Reno, NewReno, Vegas} {
		t.Run(v.String(), func(t *testing.T) {
			c := newConn(t, v, nil)
			c.submit(200)
			c.run(t, 5*time.Second)
			if got := c.sink.Delivered(); got != 200 {
				t.Errorf("delivered %d, want 200", got)
			}
			if got := c.sender.Counters().Retransmits; got != 0 {
				t.Errorf("retransmits = %d on a lossless path", got)
			}
			if c.sender.FlightSize() != 0 {
				t.Errorf("flight size %d after drain", c.sender.FlightSize())
			}
		})
	}
}

func TestFastRetransmitOnTripleDupAck(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.fwd.drop = dropSeqOnce(5)
	c.submit(50)
	c.run(t, 300*time.Millisecond) // < initial RTO of 1s
	cnt := c.sender.Counters()
	if cnt.FastRetransmits != 1 {
		t.Errorf("fast retransmits = %d, want 1", cnt.FastRetransmits)
	}
	if cnt.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (dup ACKs must recover first)", cnt.Timeouts)
	}
	c.run(t, 2*time.Second)
	if got := c.sink.Delivered(); got != 50 {
		t.Errorf("delivered %d, want 50", got)
	}
}

func TestRenoHalvesWindowOnFastRetransmit(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(1000)
	c.run(t, 90*time.Millisecond) // let cwnd ramp into the teens
	before := c.sender.Cwnd()
	if before < 8 {
		t.Fatalf("setup: cwnd = %v, want ramped-up window", before)
	}
	// Drop the next new packet to force one loss.
	next := int64(c.fwd.dataSent())
	c.fwd.drop = dropSeqOnce(next)
	// Probe at a fine grain: cwnd dips to ssthresh ≈ flight/2 on recovery
	// exit and then climbs again in congestion avoidance.
	lowest := before
	for i := 0; i < 100; i++ {
		c.run(t, 2*time.Millisecond)
		if w := c.sender.Cwnd(); w < lowest {
			lowest = w
		}
	}
	cnt := c.sender.Counters()
	if cnt.FastRetransmits != 1 || cnt.Timeouts != 0 {
		t.Fatalf("fastRtx=%d timeouts=%d, want 1/0", cnt.FastRetransmits, cnt.Timeouts)
	}
	if lowest > before*0.75 {
		t.Errorf("cwnd %v never dipped below 3/4 of %v after a loss", lowest, before)
	}
	if c.sender.InRecovery() {
		t.Error("sender still in recovery after the loss was repaired")
	}
}

func TestTahoeRestartsSlowStartOnLoss(t *testing.T) {
	c := newConn(t, Tahoe, nil)
	c.submit(1000)
	c.run(t, 90*time.Millisecond)
	next := int64(c.fwd.dataSent())
	c.fwd.drop = dropSeqOnce(next)
	// Capture cwnd shortly after the loss is detected: Tahoe goes to 1
	// and climbs again, so probe at a fine grain for the collapse.
	sawCollapse := false
	for i := 0; i < 100; i++ {
		c.run(t, 2*time.Millisecond)
		if c.sender.Cwnd() <= 1 {
			sawCollapse = true
			break
		}
	}
	if !sawCollapse {
		t.Error("Tahoe never collapsed cwnd to 1 after a loss")
	}
	cnt := c.sender.Counters()
	if cnt.FastRetransmits != 1 {
		t.Errorf("fast retransmits = %d, want 1", cnt.FastRetransmits)
	}
	if c.sender.InRecovery() {
		t.Error("Tahoe must not use fast recovery")
	}
}

func TestNewRenoRepairsMultipleLossesWithoutTimeout(t *testing.T) {
	c := newConn(t, NewReno, nil)
	c.submit(1000)
	c.run(t, 90*time.Millisecond)
	next := int64(c.fwd.dataSent())
	// Two losses in the same window: plain Reno usually needs a timeout;
	// NewReno repairs through partial ACKs.
	c.fwd.drop = dropSeqOnce(next, next+3)
	c.run(t, 900*time.Millisecond) // still below the 1s initial RTO
	cnt := c.sender.Counters()
	if cnt.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (partial-ACK repair)", cnt.Timeouts)
	}
	if cnt.FastRetransmits < 1 {
		t.Errorf("fast retransmits = %d, want >= 1", cnt.FastRetransmits)
	}
	c.run(t, 2*time.Second)
	if delivered, want := c.sink.Delivered(), uint64(1000); delivered != want {
		// The backlog may not fully drain; what matters is progress far
		// past both loss points.
		if delivered < uint64(next)+10 {
			t.Errorf("delivered %d, stalled near loss point %d", delivered, next)
		}
	}
}

func TestTimeoutWhenNoDupAcksPossible(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.fwd.drop = dropSeqOnce(0)
	c.submit(1) // single packet: no dup ACKs can ever arrive
	c.run(t, 5*time.Second)
	cnt := c.sender.Counters()
	if cnt.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", cnt.Timeouts)
	}
	if cnt.FastRetransmits != 0 {
		t.Errorf("fast retransmits = %d, want 0", cnt.FastRetransmits)
	}
	if c.sink.Delivered() != 1 {
		t.Errorf("delivered %d, want 1", c.sink.Delivered())
	}
}

func TestTimeoutBackoffDoubles(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.fwd.drop = dropSeqTimes(0, 3) // first three transmissions lost
	c.submit(1)
	c.run(t, 20*time.Second)
	cnt := c.sender.Counters()
	if cnt.Timeouts != 3 {
		t.Fatalf("timeouts = %d, want 3", cnt.Timeouts)
	}
	if c.sink.Delivered() != 1 {
		t.Fatalf("delivered %d, want 1", c.sink.Delivered())
	}
	// Transmission times: t0≈0, then RTO(1s), 2·RTO, 4·RTO later.
	var times []sim.Time
	for _, p := range c.fwd.log {
		if p.IsData() && p.Seq == 0 {
			times = append(times, p.SentAt)
		}
	}
	if len(times) != 4 {
		t.Fatalf("seq 0 transmitted %d times, want 4", len(times))
	}
	gaps := []sim.Duration{
		times[1].Sub(times[0]),
		times[2].Sub(times[1]),
		times[3].Sub(times[2]),
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1]*3/2 {
			t.Errorf("backoff gaps %v not doubling", gaps)
		}
	}
}

func TestTimeoutCollapsesWindowToOne(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(1000)
	c.run(t, 90*time.Millisecond)
	if c.sender.Cwnd() < 8 {
		t.Fatalf("setup: cwnd = %v", c.sender.Cwnd())
	}
	// Sever the forward path entirely: no ACKs, only a timeout can fire.
	c.fwd.drop = func(*packet.Packet) bool { return true }
	c.run(t, 2*time.Second)
	if got := c.sender.Counters().Timeouts; got == 0 {
		t.Fatal("no timeout despite severed path")
	}
	// cwnd is 1 right after the collapse; it cannot grow while the path
	// is still severed.
	if got := c.sender.Cwnd(); got != 1 {
		t.Errorf("cwnd = %v after timeout with severed path, want 1", got)
	}
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	c := newConn(t, Reno, func(cfg *Config) { cfg.MinRTO = time.Millisecond })
	// Submit after time has advanced so SentAt is distinctive.
	c.run(t, 50*time.Millisecond)
	c.submit(1)
	c.run(t, time.Second)
	// RTT is exactly 20 ms (two 10 ms pipes, zero serialization).
	if got := c.sender.SRTT(); got != 20*time.Millisecond {
		t.Errorf("SRTT = %v, want 20ms", got)
	}
	// First sample: rttvar = rtt/2, RTO = srtt + 4·rttvar = 3·rtt = 60ms.
	if got := c.sender.RTO(); got != 60*time.Millisecond {
		t.Errorf("RTO = %v, want 60ms", got)
	}
}

func TestRTOClampedToMin(t *testing.T) {
	c := newConn(t, Reno, nil) // default MinRTO 200ms
	c.submit(10)
	c.run(t, time.Second)
	if got := c.sender.RTO(); got != 200*time.Millisecond {
		t.Errorf("RTO = %v, want clamped to 200ms", got)
	}
}

func TestKarnNoSampleFromRetransmit(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.fwd.drop = dropSeqOnce(0)
	c.submit(1)
	// Run past the timeout and retransmission; the only delivered copy of
	// seq 0 is a retransmission, so no RTT sample may be taken.
	c.run(t, 3*time.Second)
	if c.sink.Delivered() != 1 {
		t.Fatalf("delivered %d, want 1", c.sink.Delivered())
	}
	if got := c.sender.SRTT(); got != 0 {
		t.Errorf("SRTT = %v from a retransmitted segment, want 0 (Karn)", got)
	}
	// A subsequent fresh packet provides the first valid sample.
	c.submit(1)
	c.run(t, time.Second)
	if got := c.sender.SRTT(); got != 20*time.Millisecond {
		t.Errorf("SRTT = %v after fresh packet, want 20ms", got)
	}
}

func TestBacklogAndCounters(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(100)
	if got := c.sender.Backlog(); got != 99 {
		// cwnd=1: one packet leaves immediately, 99 wait.
		t.Errorf("backlog = %d, want 99", got)
	}
	c.run(t, 5*time.Second)
	cnt := c.sender.Counters()
	if cnt.Submitted != 100 {
		t.Errorf("Submitted = %d, want 100", cnt.Submitted)
	}
	if cnt.DataSent != 100 {
		t.Errorf("DataSent = %d, want 100 (no loss)", cnt.DataSent)
	}
	if cnt.AcksReceived == 0 {
		t.Error("AcksReceived = 0")
	}
	if c.sender.Backlog() != 0 {
		t.Errorf("backlog = %d after drain", c.sender.Backlog())
	}
}

func TestDupAckCounting(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.fwd.drop = dropSeqOnce(10) // lost once the window is wide enough
	c.submit(40)
	c.run(t, 2*time.Second)
	cnt := c.sender.Counters()
	if cnt.DupAcksReceived < 3 {
		t.Errorf("DupAcksReceived = %d, want >= 3", cnt.DupAcksReceived)
	}
	if c.sink.Delivered() != 40 {
		t.Errorf("delivered %d, want 40", c.sink.Delivered())
	}
}

func TestSenderIgnoresDataAndStaleAcks(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(5)
	c.run(t, time.Second)
	before := c.sender.Counters()
	// A stray data packet must be ignored.
	c.sender.Receive(&packet.Packet{Kind: packet.Data, Flow: 1, Seq: 99})
	// A stale ACK below snd_una must be ignored without dup-ACK counting.
	c.sender.Receive(&packet.Packet{Kind: packet.Ack, Flow: 1, Ack: 1})
	after := c.sender.Counters()
	if after.DupAcksReceived != before.DupAcksReceived {
		t.Error("stale ACK counted as duplicate")
	}
	if after.AcksReceived != before.AcksReceived+1 {
		t.Error("stale ACK not counted as received")
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		Tahoe: "tahoe", Reno: "reno", NewReno: "newreno", Vegas: "vegas",
	}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if got := Variant(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown variant string %q", got)
	}
}

func TestECNMarkHalvesWindowOncePerWindow(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(1000)
	c.run(t, 90*time.Millisecond)
	before := c.sender.Cwnd()
	if before < 8 {
		t.Fatalf("setup: cwnd = %v", before)
	}
	// Mark every data packet for one stretch: the sender must respond at
	// most once per window of data, not per ACK.
	c.fwd.drop = nil
	marking := true
	origSend := c.fwd.dst
	_ = origSend
	c.fwd.drop = func(p *packet.Packet) bool {
		if marking && p.IsData() {
			p.ECE = true
		}
		return false
	}
	c.run(t, 45*time.Millisecond) // ~one RTT of marked traffic
	marking = false
	after := c.sender.Cwnd()
	if after >= before {
		t.Errorf("cwnd %v -> %v: no ECN response", before, after)
	}
	// One multiplicative decrease, not a collapse: with at most two
	// marked windows in 45ms, cwnd stays above a quarter of its old value.
	if after < before/8 {
		t.Errorf("cwnd %v -> %v: ECN response fired per ACK instead of per window", before, after)
	}
	if got := c.sender.Counters().Retransmits; got != 0 {
		t.Errorf("ECN response retransmitted %d packets; marks are not losses", got)
	}
}

func TestCwndInvariantsUnderRandomLoss(t *testing.T) {
	// Safety invariants across every variant under sustained random loss:
	// cwnd >= 1, ssthresh >= 2, flight size within the advertised window
	// plus recovery inflation allowance.
	for _, v := range []Variant{Tahoe, Reno, NewReno, Vegas, SACK} {
		t.Run(v.String(), func(t *testing.T) {
			c := newConn(t, v, nil)
			rng := sim.NewRNG(99)
			c.fwd.drop = func(p *packet.Packet) bool {
				return p.IsData() && rng.Float64() < 0.08
			}
			c.submit(400)
			deadline := sim.TimeZero.Add(5 * time.Minute)
			for c.sched.Now() < deadline {
				if !c.sched.Step() {
					break
				}
				if w := c.sender.Cwnd(); w < 1 {
					t.Fatalf("cwnd = %v < 1", w)
				}
				if s := c.sender.Ssthresh(); s < 2 {
					t.Fatalf("ssthresh = %v < 2", s)
				}
				if f := c.sender.FlightSize(); f < 0 || f > 40 {
					t.Fatalf("flight = %d outside [0, 2*maxwindow]", f)
				}
			}
			if c.sink.Delivered() != 400 {
				t.Fatalf("delivered %d, want 400", c.sink.Delivered())
			}
		})
	}
}
