package tcp

import (
	"math"

	"tcpburst/internal/sim"
)

// vegasCC implements TCP Vegas congestion avoidance (Brakmo & Peterson,
// 1995): once per round-trip it compares the expected throughput
// cwnd/baseRTT with the actual throughput cwnd/RTT and steers the number of
// packets the flow keeps queued at the bottleneck into the [alpha, beta]
// band — a linear increase when fewer than alpha packets are queued, a
// linear decrease when more than beta are.
//
// Slow start is modified to double only every other RTT and exits to
// congestion avoidance as soon as the queue estimate exceeds gamma. Losses
// are still repaired Reno-style, with Vegas's fine-grained early
// retransmission check on the first and second duplicate ACK.
type vegasCC struct {
	params VegasParams

	baseRTT     sim.Duration // minimum RTT ever observed
	epochRTTSum sim.Duration // sum of RTT samples within the current epoch
	epochEnd    int64        // snd_nxt when the epoch began
	epochRTTs   int          // samples within the current epoch
	growEpoch   bool         // slow start doubles only on alternate epochs
}

var _ congestionControl = (*vegasCC)(nil)

func newVegasCC(params VegasParams) *vegasCC {
	return &vegasCC{params: params, growEpoch: true}
}

func (c *vegasCC) onNewAck(s *Sender, acked int64, rtt sim.Duration) {
	if rtt > 0 {
		if c.baseRTT == 0 || rtt < c.baseRTT {
			c.baseRTT = rtt
		}
		c.epochRTTSum += rtt
		c.epochRTTs++
	}

	if s.inRecovery {
		if s.sndUna < s.recover {
			// Partial ACK: repair the next hole without leaving
			// recovery (Vegas retransmits eagerly after a loss).
			s.cwnd -= float64(acked)
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.cwnd++
			s.retransmitHead()
			return
		}
		s.cwnd = s.ssthresh
		s.inRecovery = false
		c.resetEpoch(s)
		return
	}

	if s.sndUna >= c.epochEnd {
		c.adjustWindow(s)
		c.resetEpoch(s)
	}

	// Slow start grows per ACK, but only on alternate (doubling) epochs —
	// Vegas's modified slow start doubles every other RTT.
	if s.cwnd < s.ssthresh && c.growEpoch {
		s.cwnd++
		if max := float64(s.cfg.MaxWindow); s.cwnd > max {
			s.cwnd = max
		}
	}
}

// adjustWindow runs Vegas's once-per-RTT comparison of expected and actual
// throughput.
func (c *vegasCC) adjustWindow(s *Sender) {
	if c.epochRTTs == 0 || c.baseRTT == 0 {
		return
	}
	// The epoch's average RTT estimates the actual sending rate; Brakmo &
	// Peterson compute Actual from the RTT observed over the epoch.
	rtt := c.epochRTTSum / sim.Duration(c.epochRTTs)
	// diff estimates the packets this flow keeps queued at the bottleneck:
	// cwnd * (rtt - baseRTT) / rtt.
	diff := s.cwnd * float64(rtt-c.baseRTT) / float64(rtt)

	if s.cwnd < s.ssthresh {
		// Modified slow start: exit as soon as the flow queues more
		// than gamma packets, trimming the window to what the path
		// actually carried.
		if diff > c.params.Gamma {
			target := s.cwnd * float64(c.baseRTT) / float64(rtt)
			s.cwnd = math.Min(s.cwnd, target+1)
			if s.cwnd < 2 {
				s.cwnd = 2
			}
			s.ssthresh = s.cwnd
		}
		return
	}

	switch {
	case diff < c.params.Alpha:
		s.cwnd++
	case diff > c.params.Beta:
		s.cwnd--
	}
	if s.cwnd < 2 {
		s.cwnd = 2
	}
	if max := float64(s.cfg.MaxWindow); s.cwnd > max {
		s.cwnd = max
	}
}

func (c *vegasCC) resetEpoch(s *Sender) {
	c.epochEnd = s.sndNxt
	c.epochRTTSum = 0
	c.epochRTTs = 0
	c.growEpoch = !c.growEpoch
}

func (c *vegasCC) onDupAck(s *Sender, count int) {
	if s.inRecovery {
		s.cwnd++
		return
	}
	if count == 3 {
		enterFastRetransmit(s, Vegas)
		return
	}
	if count > 3 {
		return
	}
	// Fine-grained early retransmission: if the oldest outstanding
	// segment has already exceeded the RTT-based timeout, do not wait for
	// the third duplicate ACK.
	if sentAt, ok := s.segSentAt(s.sndUna); ok && s.srtt > 0 {
		fineTimeout := s.srtt + 4*s.rttvar
		if s.cfg.Sched.Now().Sub(sentAt) > fineTimeout {
			enterFastRetransmit(s, Vegas)
		}
	}
}

func (c *vegasCC) onTimeout(s *Sender) {
	// Vegas retransmits on an accurate RTT-based timer rather than the
	// coarse-grained BSD one, so a first expiry signals a single lost
	// segment, not collapse: reduce the window by a quarter and repair.
	// Only a repeated expiry (the retransmission itself was lost) falls
	// back to the full slow-start restart. The sender doubles backoff
	// before this hook runs, so a first expiry sees backoff == 2.
	if s.backoff <= 2 {
		s.ssthresh = math.Max(s.cwnd*3/4, 2)
		s.cwnd = s.ssthresh
		s.inRecovery = false
		s.recover = s.sndNxt
	} else {
		collapseOnTimeout(s)
	}
	c.resetEpoch(s)
}
