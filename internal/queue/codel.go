package queue

import (
	"fmt"
	"math"

	"tcpburst/internal/packet"
	"tcpburst/internal/sim"
)

// CoDelConfig parameterizes a Controlled Delay queue (Nichols & Jacobson,
// CACM 2012; RFC 8289).
type CoDelConfig struct {
	// Capacity is the physical buffer limit in packets; arrivals beyond it
	// are tail-dropped regardless of the control law.
	Capacity int
	// Target is the acceptable standing sojourn time (RFC default 5ms).
	Target sim.Duration
	// Interval is the sliding window over which the minimum sojourn must
	// exceed Target before dropping starts (RFC default 100ms, on the
	// order of a worst-case RTT).
	Interval sim.Duration
	// ECN, when true, marks packets (sets ECE) instead of head-dropping
	// them; the control law advances identically either way.
	ECN bool
	// Metrics holds preregistered telemetry handles; zero handles no-op.
	Metrics Metrics
}

// Validate reports the first configuration error, or nil.
func (c CoDelConfig) Validate() error {
	switch {
	case c.Capacity < 1:
		return fmt.Errorf("codel: capacity %d < 1", c.Capacity)
	case c.Target <= 0:
		return fmt.Errorf("codel: target %v <= 0", c.Target)
	case c.Interval <= 0:
		return fmt.Errorf("codel: interval %v <= 0", c.Interval)
	}
	return nil
}

// CoDel is a sojourn-time AQM: it watches how long packets actually wait
// rather than how many are queued, and head-drops at dequeue once the
// minimum sojourn has stayed above Target for a full Interval, with drop
// spacing tightening as interval/sqrt(count) until the delay yields. Unlike
// FIFO and RED it drops from the head and at dequeue time — the link layer
// discovers those losses through the DequeueDropper hook.
type CoDel struct {
	cfg  CoDelConfig
	ring codelRing

	firstAbove sim.Time // when sojourn first stayed above target; TimeZero if not above
	dropNext   sim.Time // scheduled time of the next drop while dropping
	count      int      // drops since entering the current dropping state
	lastCount  int      // count when the previous dropping state ended
	dropping   bool

	earlyDrops  uint64
	forcedDrops uint64
	marks       uint64

	onDeqDrop func(p *packet.Packet)
}

var _ Discipline = (*CoDel)(nil)
var _ DequeueDropper = (*CoDel)(nil)
var _ StatsReporter = (*CoDel)(nil)

// NewCoDel returns a CoDel queue, or an error if the configuration is
// invalid.
func NewCoDel(cfg CoDelConfig) (*CoDel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CoDel{cfg: cfg, ring: newCoDelRing(cfg.Capacity)}, nil
}

// OnDequeueDrop registers the sink for packets CoDel consumes at dequeue
// time (head drops). Passing nil clears the hook.
func (q *CoDel) OnDequeueDrop(fn func(p *packet.Packet)) { q.onDeqDrop = fn }

// Enqueue timestamps and accepts p unless the physical buffer is full;
// CoDel itself never refuses an arrival.
func (q *CoDel) Enqueue(now sim.Time, p *packet.Packet) bool {
	if !q.ring.push(p, now) {
		q.forcedDrops++
		q.cfg.Metrics.ForcedDrops.Inc()
		return false
	}
	return true
}

// Dequeue runs the CoDel control loop: pop the head, and while in the
// dropping state consume heads whose scheduled drop time has arrived,
// tightening the spacing with each drop. Head-dropped packets go to the
// OnDequeueDrop hook; with ECN the head is marked and delivered instead.
func (q *CoDel) Dequeue(now sim.Time) *packet.Packet {
	p, okToDrop := q.doDequeue(now)
	if p == nil {
		q.dropping = false
		return nil
	}
	if q.dropping {
		if !okToDrop {
			// Sojourn dipped below target: leave the dropping state.
			q.dropping = false
			return p
		}
		for q.dropping && !now.Before(q.dropNext) {
			if q.cfg.ECN {
				// Mark in place of the drop and deliver; the control
				// law still advances so marking stays paced.
				q.mark(p)
				q.count++
				q.dropNext = q.controlLaw(q.dropNext)
				return p
			}
			q.dropHead(p)
			q.count++
			p, okToDrop = q.doDequeue(now)
			if p == nil {
				q.dropping = false
				return nil
			}
			if !okToDrop {
				q.dropping = false
				return p
			}
			q.dropNext = q.controlLaw(q.dropNext)
		}
		return p
	}
	if okToDrop {
		// Enter the dropping state. Resume from the previous state's drop
		// rate if we left it recently (the delta heuristic of RFC 8289
		// §4.3), otherwise restart from a single drop per interval.
		delta := q.count - q.lastCount
		q.count = 1
		if delta > 1 && now.Sub(q.dropNext) < 16*q.cfg.Interval {
			q.count = delta
		}
		q.dropping = true
		if q.cfg.ECN {
			q.mark(p)
		} else {
			q.dropHead(p)
			p, _ = q.doDequeue(now)
		}
		q.lastCount = q.count
		q.dropNext = q.controlLaw(now)
	}
	return p
}

// doDequeue pops the head and applies the sojourn test: okToDrop becomes
// true only once the sojourn time has exceeded Target continuously for
// Interval with more than one packet queued behind it.
func (q *CoDel) doDequeue(now sim.Time) (p *packet.Packet, okToDrop bool) {
	p, enqueuedAt := q.ring.pop()
	if p == nil {
		q.firstAbove = sim.TimeZero
		return nil, false
	}
	sojourn := now.Sub(enqueuedAt)
	if sojourn < q.cfg.Target || q.ring.len() == 0 {
		// Below target, or draining the last packet: a standing queue
		// cannot be blamed, so restart the above-target clock.
		q.firstAbove = sim.TimeZero
		return p, false
	}
	if q.firstAbove == sim.TimeZero {
		q.firstAbove = now.Add(q.cfg.Interval)
	} else if !now.Before(q.firstAbove) {
		okToDrop = true
	}
	return p, okToDrop
}

// controlLaw schedules the next drop at interval/sqrt(count) past t.
func (q *CoDel) controlLaw(t sim.Time) sim.Time {
	return t.Add(sim.Duration(float64(q.cfg.Interval) / math.Sqrt(float64(q.count))))
}

func (q *CoDel) dropHead(p *packet.Packet) {
	q.earlyDrops++
	q.cfg.Metrics.EarlyDrops.Inc()
	if q.onDeqDrop != nil {
		q.onDeqDrop(p)
	}
}

func (q *CoDel) mark(p *packet.Packet) {
	p.ECE = true
	q.marks++
	q.cfg.Metrics.Marks.Inc()
}

// Len returns the instantaneous queue length in packets.
func (q *CoDel) Len() int { return q.ring.len() }

// Cap returns the physical buffer capacity in packets.
func (q *CoDel) Cap() int { return q.cfg.Capacity }

// Dropping reports whether the control loop is currently in its dropping
// state.
func (q *CoDel) Dropping() bool { return q.dropping }

// DisciplineStats reports CoDel's counters; FinalAvg is 1 while the
// control loop ended a run still in its dropping state, else 0.
func (q *CoDel) DisciplineStats() Stats {
	s := Stats{
		EarlyDrops:  q.earlyDrops,
		ForcedDrops: q.forcedDrops,
		Marks:       q.marks,
	}
	if q.dropping {
		s.FinalAvg = 1
	}
	return s
}

// codelRing is a lazily grown power-of-two ring of (packet, enqueue time)
// pairs — the fifoRing shape, widened so Dequeue can compute sojourn times
// without touching the packet struct.
type codelRing struct {
	buf  []codelEntry
	mask int
	cap  int
	head int
	n    int
}

type codelEntry struct {
	p  *packet.Packet
	at sim.Time
}

func newCoDelRing(capacity int) codelRing {
	if capacity < 1 {
		capacity = 1
	}
	return codelRing{cap: capacity}
}

func (r *codelRing) push(p *packet.Packet, now sim.Time) bool {
	if r.n == r.cap {
		return false
	}
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 1
			for size < r.cap && size < 16 {
				size <<= 1
			}
		}
		//burst:alloc-ok lazy ring growth doubles toward fixed capacity, then never reallocates
		grown := make([]codelEntry, size)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)&r.mask]
		}
		r.buf, r.mask, r.head = grown, size-1, 0
	}
	r.buf[(r.head+r.n)&r.mask] = codelEntry{p: p, at: now}
	r.n++
	return true
}

func (r *codelRing) pop() (*packet.Packet, sim.Time) {
	if r.n == 0 {
		return nil, sim.TimeZero
	}
	e := r.buf[r.head]
	r.head = (r.head + 1) & r.mask
	r.n--
	return e.p, e.at
}

func (r *codelRing) len() int { return r.n }
