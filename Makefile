# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the pinned tool versions here and there in sync.

STATICCHECK_VERSION = 2024.1.1
GOVULNCHECK_VERSION = v1.1.3

.PHONY: all build test race lint burstlint lint-hotpath lint-report vet-burstlint staticcheck govulncheck golden bench bench-baseline bench-gate

all: build test lint

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

## lint: everything the CI lint job runs.
lint: burstlint staticcheck govulncheck

## burstlint: the repo's own invariant analyzers (see internal/analysis).
burstlint:
	go run ./cmd/burstlint ./...

## lint-hotpath: just the hot-path allocation analyzer, for fast local
## iteration while touching internal/sim, internal/packet, or a queue
## discipline's Enqueue/Dequeue path.
lint-hotpath:
	go run ./cmd/burstlint -analyzers hotpathalloc ./...

## lint-report: the full suite in machine-readable form. CI uploads the
## resulting analysis_report.json so per-analyzer diagnostic and
## suppression counts are comparable across PRs.
lint-report:
	go run ./cmd/burstlint -json ./... > analysis_report.json

## vet-burstlint: the same analyzers through go vet's driver and cache.
vet-burstlint:
	go build -o $(CURDIR)/bin/burstlint ./cmd/burstlint
	go vet -vettool=$(CURDIR)/bin/burstlint ./...

staticcheck:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

govulncheck:
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	govulncheck ./...

## golden: regenerate the behavior-preservation digest table. Justify any
## diff in review: a changed digest is a changed simulation.
golden:
	go test ./internal/core -run TestGoldenSummaries -update-golden

## bench: run the gated benchmark tiers and aggregate the JSON artifacts
## under results/bench/<short-sha>/ so the perf trajectory is tracked in
## the repo, not just in CI artifact storage.
BENCH_DIR = results/bench/$(shell git rev-parse --short HEAD)
bench:
	go test -bench='Kernel|ExperimentPackets|TransportRoundTrip' -benchtime=100x -benchmem -run '^$$' ./... | tee /tmp/bench_kernel.txt
	go test -bench='ScalingClients' -benchtime=1x -run '^$$' . | tee /tmp/bench_scaling.txt
	go test -bench='BurstBatching' -benchtime=1x -run '^$$' . | tee /tmp/bench_batch.txt
	go test -bench='AQMDisciplines' -benchtime=1x -run '^$$' . | tee /tmp/bench_aqm.txt
	mkdir -p $(BENCH_DIR)
	python3 .github/bench_to_json.py /tmp/bench_kernel.txt $(BENCH_DIR)/BENCH_kernel.json $(shell git rev-parse HEAD)
	python3 .github/bench_to_json.py /tmp/bench_scaling.txt $(BENCH_DIR)/BENCH_scaling.json $(shell git rev-parse HEAD)
	python3 .github/bench_to_json.py /tmp/bench_batch.txt $(BENCH_DIR)/BENCH_batch.json $(shell git rev-parse HEAD)
	python3 .github/bench_to_json.py /tmp/bench_aqm.txt $(BENCH_DIR)/BENCH_aqm.json $(shell git rev-parse HEAD)

## bench-gate: compare the most recent `make bench` output against the
## committed baseline; fails on >10% sim_pkts/s regression.
bench-gate:
	python3 .github/check_bench_regression.py results/bench/baseline/BENCH_scaling.json $(BENCH_DIR)/BENCH_scaling.json
	python3 .github/check_bench_regression.py results/bench/baseline/BENCH_batch.json $(BENCH_DIR)/BENCH_batch.json
	python3 .github/check_bench_regression.py results/bench/baseline/BENCH_aqm.json $(BENCH_DIR)/BENCH_aqm.json

## bench-baseline: promote the current commit's bench run to the gate
## baseline. Commit the diff alongside the change that justifies it.
bench-baseline: bench
	cp $(BENCH_DIR)/BENCH_scaling.json $(BENCH_DIR)/BENCH_batch.json $(BENCH_DIR)/BENCH_aqm.json results/bench/baseline/
