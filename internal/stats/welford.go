// Package stats provides the statistical machinery of the paper's
// evaluation: the coefficient of variation of windowed packet counts (the
// burstiness measure), its analytic value for aggregated Poisson traffic,
// Jain's fairness index, and Hurst-parameter estimators for the
// self-similarity comparison the paper argues against.
package stats

import "math"

// Welford accumulates mean and variance in a single numerically stable
// pass (Welford's online algorithm).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population (biased) variance.
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// COV returns the coefficient of variation — standard deviation over mean —
// the paper's burstiness measure. It returns 0 for a zero mean.
func (w *Welford) COV() float64 {
	if w.mean == 0 { //burst:floateq-ok zero-mean guard before division
		return 0
	}
	return w.StdDev() / w.mean
}

// Merge folds another accumulator into this one (parallel Welford
// combination by Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
}

// Summarize computes a Welford accumulator over a slice in one call.
func Summarize(xs []float64) Welford {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w
}

// COV computes the coefficient of variation of a series directly.
func COV(xs []float64) float64 {
	w := Summarize(xs)
	return w.COV()
}

// PoissonAggregateCOV returns the analytic coefficient of variation of the
// number of arrivals per window for n independent Poisson sources of rate
// lambda (packets/second) observed over windows of length windowSeconds:
// counts are Poisson(n·λ·T), whose c.o.v. is 1/sqrt(n·λ·T). This is the
// paper's "aggregated Poisson" reference curve in Figure 2.
func PoissonAggregateCOV(n int, lambda, windowSeconds float64) float64 {
	m := float64(n) * lambda * windowSeconds
	if m <= 0 {
		return 0
	}
	return 1 / math.Sqrt(m)
}

// JainIndex returns Jain's fairness index of the allocations xs:
// (Σx)² / (n·Σx²). It is 1 for perfectly equal shares and approaches 1/n
// as one flow starves the rest. Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 { //burst:floateq-ok all-zero series guard before division
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Correlation returns the Pearson correlation coefficient of two
// equal-length series, or 0 when undefined (mismatched lengths, fewer than
// two points, or a degenerate series).
func Correlation(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	wx, wy := Summarize(x), Summarize(y)
	sx, sy := math.Sqrt(wx.PopVariance()), math.Sqrt(wy.PopVariance())
	if sx == 0 || sy == 0 { //burst:floateq-ok zero-deviation guard before division
		return 0
	}
	mx, my := wx.Mean(), wy.Mean()
	var cov float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
	}
	cov /= float64(len(x))
	return cov / (sx * sy)
}

// MeanPairwiseCorrelation returns the average Pearson correlation over all
// pairs of the given series — a synchronization index: near 1 when the
// series move in lockstep, near 0 when independent. It returns 0 with
// fewer than two series.
func MeanPairwiseCorrelation(series [][]float64) float64 {
	if len(series) < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			sum += Correlation(series[i], series[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}
