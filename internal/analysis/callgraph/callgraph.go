// Package callgraph builds a per-package call graph over type-checked
// syntax — the whole-program substrate under hotpathalloc (and, later,
// deeper packetrelease/shardownership passes). Like the rest of burstlint
// it is stdlib-only: nodes are *types.Func objects for the package's
// declared functions and methods, and edges come from three resolution
// rules:
//
//   - Static calls: f() and pkg-level function references resolve through
//     types.Info.Uses.
//   - Method calls: x.M() on a concrete receiver resolves through the
//     selection's method object (types.MethodSet semantics — promoted and
//     pointer-receiver methods included).
//   - Interface dispatch: x.M() where x is an interface adds an edge to
//     M's implementation on every named type declared in this package
//     whose method set satisfies the interface (its implements-set). The
//     dynamic callee might live in another package; that callee is covered
//     when its own package is analyzed, since roots are declared per
//     package.
//
// Soundness limits (documented in DESIGN.md §14): calls through function
// values (fields, parameters, variables of func type) and reflection are
// not traversed — the callee is unresolvable without a points-to analysis.
// Function literals are treated as part of their enclosing declaration:
// their bodies contribute edges to the enclosing function, which
// over-approximates (the closure may run elsewhere or never) but never
// misses a callee that does run on the hot path it was built on.
package callgraph

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Graph is the package-local call graph.
type Graph struct {
	pkg  *types.Package
	info *types.Info

	// decls maps each declared function/method object to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// edges maps caller -> callees (declared in this package only).
	edges map[*types.Func][]*types.Func
	// methodIndex: method name -> declared methods of that name, for
	// interface-dispatch expansion.
	methodIndex map[string][]*types.Func
}

// Build assembles the graph for one type-checked package.
func Build(pkg *types.Package, info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		pkg:         pkg,
		info:        info,
		decls:       make(map[*types.Func]*ast.FuncDecl),
		edges:       make(map[*types.Func][]*types.Func),
		methodIndex: make(map[string][]*types.Func),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			if fd.Recv != nil {
				g.methodIndex[fn.Name()] = append(g.methodIndex[fn.Name()], fn)
			}
		}
	}
	for fn, fd := range g.decls {
		g.addEdges(fn, fd.Body)
	}
	return g
}

// Decl returns the syntax of a function declared in this package, or nil.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Functions returns every declared function/method, sorted by name for
// deterministic iteration.
func (g *Graph) Functions() []*types.Func {
	out := make([]*types.Func, 0, len(g.decls))
	for fn := range g.decls {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return FuncName(out[i]) < FuncName(out[j]) })
	return out
}

// addEdges walks one function body recording resolvable callees.
func (g *Graph) addEdges(from *types.Func, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, callee := range g.Callees(call) {
			g.edges[from] = append(g.edges[from], callee)
		}
		return true
	})
}

// Callees resolves the package-local functions a call may invoke: one for
// a static or concrete-method call, the implements-set expansion for an
// interface dispatch, nothing for builtins, conversions, and calls through
// function values.
func (g *Graph) Callees(call *ast.CallExpr) []*types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := g.info.Uses[fun].(*types.Func); ok {
			if _, declared := g.decls[fn]; declared {
				return []*types.Func{fn}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := g.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return g.implementers(sel.Recv(), fn.Name())
			}
			if _, declared := g.decls[fn]; declared {
				return []*types.Func{fn}
			}
			return nil
		}
		// Package-qualified call (pkg.F) or method expression.
		if fn, ok := g.info.Uses[fun.Sel].(*types.Func); ok {
			if _, declared := g.decls[fn]; declared {
				return []*types.Func{fn}
			}
		}
	}
	return nil
}

// implementers returns the declared methods named name on every named type
// in this package whose method set (value or pointer) satisfies iface.
func (g *Graph) implementers(iface types.Type, name string) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, m := range g.methodIndex[name] {
		recv := m.Type().(*types.Signature).Recv().Type()
		// The pointer type's method set is the superset; checking it covers
		// both value- and pointer-receiver implementations.
		base := recv
		if ptr, ok := recv.(*types.Pointer); ok {
			base = ptr.Elem()
		}
		if types.Implements(types.NewPointer(base), it) || types.Implements(base, it) {
			out = append(out, m)
		}
	}
	return out
}

// Reachable computes the closure of functions reachable from roots,
// mapping each reachable function to the root it was first discovered
// from (roots map to themselves). Traversal order is deterministic.
func (g *Graph) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	via := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(roots))
	for _, r := range roots {
		if _, ok := g.decls[r]; !ok {
			continue
		}
		if _, seen := via[r]; seen {
			continue
		}
		via[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := via[fn]
		for _, callee := range g.edges[fn] {
			if _, seen := via[callee]; seen {
				continue
			}
			via[callee] = root
			queue = append(queue, callee)
		}
	}
	return via
}

// FuncName renders a function the way the root config names it: "Func"
// for package-level functions, "Type.Method" for methods.
func FuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// RootsByName resolves root specs ("Func", "Type.Method", or a bare
// method name matching every type's method of that name) against the
// declared functions.
func (g *Graph) RootsByName(specs []string) []*types.Func {
	want := make(map[string]bool, len(specs))
	methodName := make(map[string]bool)
	for _, s := range specs {
		want[s] = true
		if !strings.Contains(s, ".") {
			methodName[s] = true
		}
	}
	var out []*types.Func
	for _, fn := range g.Functions() {
		if want[FuncName(fn)] || (methodName[fn.Name()] && fn.Type().(*types.Signature).Recv() != nil) {
			out = append(out, fn)
		}
	}
	return out
}
