// Protocol wars: compare every transport protocol at the same offered
// load, the way the paper's Figures 2-4 and 13 do, and print a compact
// league table per congestion regime — uncongested, the 38/39 crossover,
// and heavy overload.
//
// Run with: go run ./examples/protocolwars
package main

import (
	"fmt"
	"log"
	"time"

	"tcpburst/internal/core"
)

func main() {
	regimes := []struct {
		clients int
		label   string
	}{
		{8, "uncongested"},
		{38, "just under capacity"},
		{39, "just over capacity"},
		{60, "heavy overload"},
	}
	cells := []core.Cell{
		{Protocol: core.UDP, Gateway: core.FIFO},
		{Protocol: core.Reno, Gateway: core.FIFO},
		{Protocol: core.Reno, Gateway: core.RED},
		{Protocol: core.RenoDelayAck, Gateway: core.FIFO},
		{Protocol: core.Vegas, Gateway: core.FIFO},
		{Protocol: core.Vegas, Gateway: core.RED},
		{Protocol: core.NewReno, Gateway: core.FIFO}, // ablation beyond the paper
		{Protocol: core.Tahoe, Gateway: core.FIFO},   // ablation beyond the paper
		{Protocol: core.Sack, Gateway: core.FIFO},    // ablation beyond the paper
	}

	for _, regime := range regimes {
		fmt.Printf("=== %d clients (%s) ===\n", regime.clients, regime.label)
		fmt.Printf("%-16s %8s %8s %10s %7s %9s %8s\n",
			"protocol", "cov", "vs pois", "delivered", "loss%", "timeouts", "fairness")
		for _, cell := range cells {
			cfg := core.MustConfig(
				core.WithClients(regime.clients),
				core.WithCell(cell),
				core.WithDuration(60*time.Second),
			)
			res, err := core.Run(cfg)
			if err != nil {
				log.Fatalf("run %s: %v", cell, err)
			}
			fmt.Printf("%-16s %8.4f %7.2fx %10d %7.2f %9d %8.4f\n",
				cell.String(), res.COV, res.COV/res.AnalyticCOV,
				res.Delivered, res.LossPct, res.Timeouts, res.JainFairness)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape (paper): UDP tracks the Poisson aggregate; Reno and")
	fmt.Println("especially Reno/RED grow much burstier past the crossover; Vegas stays")
	fmt.Println("smoothest among the TCPs; Vegas/RED pays the highest loss.")
}
