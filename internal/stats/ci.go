package stats

import "math"

// Simulation-output analysis: steady-state point estimates from a single
// run carry autocorrelation, so naive standard errors are wrong. The batch
// means method divides the series into contiguous batches whose means are
// approximately independent, yielding honest confidence intervals; the
// replication method (see core.RunReplications) does the same across
// independent seeds.

// CI is a point estimate with a symmetric confidence half-width.
type CI struct {
	Mean      float64
	HalfWidth float64
}

// Low and High bound the interval.
func (c CI) Low() float64  { return c.Mean - c.HalfWidth }
func (c CI) High() float64 { return c.Mean + c.HalfWidth }

// Contains reports whether v falls inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Low() && v <= c.High() }

// BatchMeansCI estimates the steady-state mean of a (possibly
// autocorrelated) series with a 95% confidence interval using the batch
// means method with the given number of batches (10–30 is conventional).
// Trailing observations that do not fill a batch are dropped. It returns a
// zero-width interval when the series is too short (fewer than two
// observations per batch or fewer than two batches).
func BatchMeansCI(xs []float64, batches int) CI {
	if batches < 2 {
		batches = 2
	}
	size := len(xs) / batches
	if size < 2 {
		w := Summarize(xs)
		return CI{Mean: w.Mean()}
	}
	var means Welford
	for b := 0; b < batches; b++ {
		batch := Summarize(xs[b*size : (b+1)*size])
		means.Add(batch.Mean())
	}
	se := means.StdDev() / math.Sqrt(float64(batches))
	return CI{
		Mean:      means.Mean(),
		HalfWidth: tQuantile975(batches-1) * se,
	}
}

// ReplicationCI computes a 95% confidence interval for the mean of
// independent replications (one value per seed).
func ReplicationCI(values []float64) CI {
	w := Summarize(values)
	if w.Count() < 2 {
		return CI{Mean: w.Mean()}
	}
	n := int(w.Count())
	se := w.StdDev() / math.Sqrt(float64(n))
	return CI{Mean: w.Mean(), HalfWidth: tQuantile975(n-1) * se}
}

// tQuantile975 returns the 0.975 quantile of Student's t distribution with
// df degrees of freedom (tabulated for small df, normal approximation with
// a continuity correction beyond).
func tQuantile975(df int) float64 {
	table := []float64{
		0,                                                             // df=0 unused
		12.706,                                                        // 1
		4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 2-10
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	// Normal limit with a light finite-df correction.
	return 1.96 + 2.4/float64(df)
}
