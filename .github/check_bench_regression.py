"""Benchstat-style regression gate over the repo's bench JSON artifacts.

Usage: check_bench_regression.py BASELINE.json CURRENT.json \
           [--metric sim_pkts_per_s] [--max-regression 0.10]

Rows are matched by exact benchmark name between the committed baseline
(results/bench/baseline/) and the JSON produced by the current run. For
every matched row the gate computes current/baseline on the chosen
metric (higher is better); any row that falls more than the allowed
fraction below baseline fails the gate. Rows present in only one file,
or missing the metric (e.g. a sub-benchmark that reports no throughput),
are listed but never fail the gate, so adding or renaming cells does not
require touching the baseline in the same commit.

The tolerance deliberately absorbs runner noise: baselines are refreshed
with `make bench-baseline` on the same machine class CI uses, and a 10%
corridor is wide enough for the single-tenant jitter we have measured
while still catching the kind of hot-path regressions this repo's
batching work exists to prevent.
"""
import json
import sys


def load(path):
    with open(path) as f:
        rows = json.load(f)
    return {r['name']: r for r in rows}


def main(argv):
    args = [a for a in argv if not a.startswith('--')]
    opts = dict(a.lstrip('-').split('=', 1) for a in argv if a.startswith('--'))
    if len(args) != 2:
        sys.exit(__doc__)
    metric = opts.get('metric', 'sim_pkts_per_s')
    tol = float(opts.get('max-regression', '0.10'))

    base, cur = load(args[0]), load(args[1])
    failures = []
    for name in sorted(set(base) | set(cur)):
        b, c = base.get(name), cur.get(name)
        if b is None or c is None:
            print(f'  SKIP  {name}: only in {"current" if b is None else "baseline"}')
            continue
        bv, cv = b.get(metric), c.get(metric)
        if bv is None or cv is None or bv == 0:
            print(f'  SKIP  {name}: no {metric}')
            continue
        ratio = cv / bv
        status = 'OK' if ratio >= 1 - tol else 'FAIL'
        print(f'  {status:4}  {name}: {metric} {bv:.0f} -> {cv:.0f} ({ratio:.3f}x)')
        if status == 'FAIL':
            failures.append(name)

    if failures:
        print(f'\nregression gate FAILED: {len(failures)} row(s) more than '
              f'{tol:.0%} below baseline on {metric}: {", ".join(failures)}')
        print('If this slowdown is intentional, refresh the baseline with '
              '`make bench-baseline` in the same commit and justify it in review.')
        sys.exit(1)
    print(f'\nregression gate passed ({metric}, tolerance {tol:.0%})')


if __name__ == '__main__':
    main(sys.argv[1:])
