package sim

// Train coalesces a run of already-ordered future callbacks — the kernel
// image of a burst of back-to-back packets leaving one link — into a single
// scheduled event plus a private ring of follow-on elements. Only the head
// element occupies the scheduler (one wheel/heap op per train instead of one
// per packet); when the head fires, the trampoline chains through successor
// elements inline for as long as per-event execution would have popped them
// next anyway: the element's (time, ordinal) key must precede every pending
// scheduler event, lie within the horizon of the Run in progress, and the
// scheduler must not have been stopped. Each chained element advances the
// clock to its own timestamp and increments the fired counter exactly as a
// popped event would, so event order, Now() as seen by callbacks, and the
// digest-visible executed-event count are bit-identical to per-event
// execution (DESIGN.md §12).
//
// Ordinals are pre-drawn from the train's lane at Add time — the same draw
// the unbatched path performs inside schedule — so the lane's consumption
// sequence, and with it every same-instant tie-break elsewhere in the
// simulation, is untouched by batching.
//
// Trains require keys to be appended in increasing order, which holds by
// construction for link deliveries: serialization completions are monotone
// in time and lane ordinals are monotone by definition.
type Train struct {
	s      *Scheduler
	lane   *Lane
	fn     func(any)
	fireFn func()

	buf  []trainElem
	mask int
	head int
	n    int

	// scheduled marks the head element as occupying a scheduler slot.
	// Invariant outside fire: n > 0 ⇒ scheduled, so NextTime and the
	// shard window coordinator always see at least the train's earliest
	// pending delivery.
	scheduled bool
	firing    bool
}

type trainElem struct {
	at  Time
	ord uint64
	arg any
}

// NewTrain returns an empty train delivering each element's arg to fn. A
// nil lane means the scheduler's default lane.
func NewTrain(s *Scheduler, lane *Lane, fn func(any)) *Train {
	if fn == nil {
		panic("sim: NewTrain requires a callback")
	}
	if lane == nil {
		lane = &s.defLane
	}
	tr := &Train{s: s, lane: lane, fn: fn}
	tr.fireFn = tr.fire
	return tr
}

// Len returns the number of buffered elements (including the scheduled head).
func (tr *Train) Len() int { return tr.n }

// Add appends a delivery of arg at instant at, drawing the element's
// ordinal from the train's lane. Instants must be non-decreasing across
// calls and never in the past.
func (tr *Train) Add(at Time, arg any) {
	if at < tr.s.now {
		panic("sim: train element scheduled in the past")
	}
	if tr.n > 0 && at < tr.buf[(tr.head+tr.n-1)&tr.mask].at {
		panic("sim: train elements must be appended in time order")
	}
	if tr.n == len(tr.buf) {
		tr.grow()
	}
	tr.buf[(tr.head+tr.n)&tr.mask] = trainElem{at: at, ord: tr.lane.Take(), arg: arg}
	tr.n++
	if !tr.scheduled && !tr.firing {
		h := &tr.buf[tr.head]
		tr.s.scheduleOrd(h.at, h.ord, tr.fireFn, nil, nil)
		tr.scheduled = true
	}
}

func (tr *Train) grow() {
	size := len(tr.buf) * 2
	if size == 0 {
		size = 16
	}
	//burst:alloc-ok train-ring growth is amortized doubling, bounded by the longest coalesced burst
	buf := make([]trainElem, size)
	for i := 0; i < tr.n; i++ {
		buf[i] = tr.buf[(tr.head+i)&tr.mask]
	}
	tr.buf = buf
	tr.mask = size - 1
	tr.head = 0
}

func (tr *Train) pop() trainElem {
	e := tr.buf[tr.head]
	tr.buf[tr.head].arg = nil
	tr.head = (tr.head + 1) & tr.mask
	tr.n--
	return e
}

// fire is the head element's trampoline. The scheduler has already set the
// clock to the head's instant and counted it fired; successors chain inline
// only while per-event execution would have popped them next.
func (tr *Train) fire() {
	s := tr.s
	tr.scheduled = false
	tr.firing = true
	e := tr.pop()
	tr.fn(e.arg)
	for tr.n > 0 {
		h := &tr.buf[tr.head]
		if s.stopped || h.at > s.horizon {
			break
		}
		if nt, nord, ok := s.peekKey(); ok && (nt < h.at || (nt == h.at && nord < h.ord)) {
			break
		}
		e = tr.pop()
		s.now = e.at
		s.fired++
		tr.fn(e.arg)
	}
	tr.firing = false
	if tr.n > 0 {
		h := &tr.buf[tr.head]
		s.scheduleOrd(h.at, h.ord, tr.fireFn, nil, nil)
		tr.scheduled = true
	}
}
