package telemetry

import (
	"fmt"

	"tcpburst/internal/sim"
)

// Sampler drives periodic snapshots: every interval of virtual time it
// polls the registry and hands the row to the sink. The tick callback is
// prebound and the value slice preallocated, so steady-state sampling into
// an allocation-free sink (Ring, JSONL, CSV over a buffered writer) does
// not allocate. Snapshot events only read simulation state, so enabling
// telemetry cannot perturb an experiment's outcome.
type Sampler struct {
	sched    *sim.Scheduler
	reg      *Registry
	interval sim.Duration
	sink     Sink

	tickFn  func() // prebound s.tick; a method value would allocate per schedule
	pending sim.Handle
	running bool
	values  []float64
	records uint64
	lastT   float64
	sampled bool
	err     error
}

// NewSampler returns a stopped sampler, or an error for an invalid
// configuration.
func NewSampler(sched *sim.Scheduler, reg *Registry, interval sim.Duration, sink Sink) (*Sampler, error) {
	switch {
	case sched == nil:
		return nil, fmt.Errorf("telemetry: nil scheduler")
	case reg == nil:
		return nil, fmt.Errorf("telemetry: nil registry")
	case interval <= 0:
		return nil, fmt.Errorf("telemetry: interval %v <= 0", interval)
	case sink == nil:
		return nil, fmt.Errorf("telemetry: nil sink")
	}
	s := &Sampler{sched: sched, reg: reg, interval: interval, sink: sink}
	s.tickFn = s.tick
	return s, nil
}

// Start announces the column set to the sink, takes the t=0 snapshot, and
// schedules the periodic ticks. Register every metric and probe first: the
// field set is fixed here.
func (s *Sampler) Start() error {
	if s.running {
		return nil
	}
	fields := s.reg.Fields()
	if err := s.sink.Begin(fields); err != nil {
		return err
	}
	s.values = make([]float64, 0, len(fields))
	s.running = true
	s.Sample()
	s.pending = s.sched.After(s.interval, s.tickFn)
	return nil
}

// Sample takes one snapshot at the current virtual time. Duplicate calls
// at the same instant (e.g. a final sample landing on a tick boundary) are
// skipped, keeping timestamps strictly increasing.
func (s *Sampler) Sample() {
	if s.err != nil {
		return
	}
	now := s.sched.Now().Seconds()
	if s.sampled && now == s.lastT {
		return
	}
	s.values = s.reg.Snapshot(s.values)
	if err := s.sink.Record(now, s.values); err != nil {
		s.err = err
		return
	}
	s.lastT = now
	s.sampled = true
	s.records++
}

func (s *Sampler) tick() {
	if !s.running {
		return
	}
	s.Sample()
	s.pending = s.sched.After(s.interval, s.tickFn)
}

// Stop cancels the pending tick.
func (s *Sampler) Stop() {
	s.running = false
	s.sched.Cancel(s.pending)
	s.pending = sim.Handle{}
}

// Records returns the number of snapshot records delivered to the sink.
func (s *Sampler) Records() uint64 { return s.records }

// Err returns the first sink error; sampling stops once one occurs.
func (s *Sampler) Err() error { return s.err }

// Close stops sampling, flushes the sink, and returns the first error the
// stream hit.
func (s *Sampler) Close() error {
	s.Stop()
	flushErr := s.sink.Flush()
	if s.err != nil {
		return s.err
	}
	return flushErr
}
