package tcp

import (
	"fmt"
	"testing"
	"time"

	"tcpburst/internal/packet"
)

// Scenario matrix: every congestion-control variant is driven through a
// library of adversarial loss patterns; each scenario states the universal
// outcome (full, in-order delivery) plus optional variant-specific checks.

type lossScenario struct {
	name string
	// install arms the loss pattern on a freshly ramped connection;
	// next is the next new sequence number at install time.
	install func(c *conn, next int64)
	// packets to submit in total.
	packets int
	// horizon for full recovery.
	horizon time.Duration
}

func scenarios() []lossScenario {
	return []lossScenario{
		{
			name:    "single-loss",
			install: func(c *conn, next int64) { c.fwd.drop = dropSeqOnce(next) },
			packets: 300, horizon: 30 * time.Second,
		},
		{
			name:    "double-loss-same-window",
			install: func(c *conn, next int64) { c.fwd.drop = dropSeqOnce(next, next+2) },
			packets: 300, horizon: 30 * time.Second,
		},
		{
			name:    "burst-loss-five",
			install: func(c *conn, next int64) { c.fwd.drop = dropSeqOnce(next, next+1, next+2, next+3, next+4) },
			packets: 300, horizon: 60 * time.Second,
		},
		{
			name:    "retransmission-lost-too",
			install: func(c *conn, next int64) { c.fwd.drop = dropSeqTimes(next, 2) },
			packets: 300, horizon: 60 * time.Second,
		},
		{
			name: "periodic-loss-every-25th",
			install: func(c *conn, next int64) {
				c.fwd.drop = func(p *packet.Packet) bool {
					return p.IsData() && !p.Retransmit && p.Seq >= next && (p.Seq-next)%25 == 0
				}
			},
			packets: 300, horizon: 2 * time.Minute,
		},
		{
			name: "ack-decimation",
			install: func(c *conn, next int64) {
				i := 0
				c.rev.drop = func(p *packet.Packet) bool {
					i++
					return p.IsAck() && i%3 == 0
				}
			},
			packets: 300, horizon: 2 * time.Minute,
		},
		{
			name: "tail-loss",
			install: func(c *conn, next int64) {
				// The last packets of the transfer are lost: no dup
				// ACKs possible, only timers recover.
				c.fwd.drop = func(p *packet.Packet) bool {
					return p.IsData() && !p.Retransmit && p.Seq >= 297
				}
			},
			packets: 300, horizon: 2 * time.Minute,
		},
	}
}

func TestVariantScenarioMatrix(t *testing.T) {
	for _, v := range []Variant{Tahoe, Reno, NewReno, Vegas, SACK} {
		for _, sc := range scenarios() {
			t.Run(fmt.Sprintf("%s/%s", v, sc.name), func(t *testing.T) {
				c := newConn(t, v, nil)
				// Ramp first so losses hit an established window.
				c.submit(60)
				c.run(t, 200*time.Millisecond)
				next := int64(c.fwd.dataSent())
				sc.install(c, next)
				c.submit(sc.packets - 60)
				c.run(t, sim2dur(sc.horizon))

				if got := c.sink.Delivered(); got != uint64(sc.packets) {
					t.Fatalf("delivered %d, want %d (timeouts=%d fastrtx=%d)",
						got, sc.packets,
						c.sender.Counters().Timeouts, c.sender.Counters().FastRetransmits)
				}
				if got := c.sink.RcvNxt(); got != int64(sc.packets) {
					t.Fatalf("rcvNxt = %d, want %d", got, sc.packets)
				}
				if f := c.sender.FlightSize(); f != 0 {
					t.Errorf("flight = %d after completion", f)
				}
				if b := c.sender.Backlog(); b != 0 {
					t.Errorf("backlog = %d after completion", b)
				}
			})
		}
	}
}

// sim2dur exists to keep the scenario table readable (time.Duration and
// sim.Duration are the same type).
func sim2dur(d time.Duration) time.Duration { return d }

// TestScenarioEfficiencyOrdering: across the double-loss scenario the
// retransmission counts must reflect recovery sophistication:
// SACK <= NewReno <= Reno-family go-back-N behavior.
func TestScenarioEfficiencyOrdering(t *testing.T) {
	rtx := map[Variant]uint64{}
	for _, v := range []Variant{Reno, NewReno, SACK} {
		c := newConn(t, v, nil)
		c.submit(60)
		c.run(t, 200*time.Millisecond)
		next := int64(c.fwd.dataSent())
		c.fwd.drop = dropSeqOnce(next, next+2, next+4)
		c.submit(240)
		c.run(t, 30*time.Second)
		if c.sink.Delivered() != 300 {
			t.Fatalf("%v: delivered %d", v, c.sink.Delivered())
		}
		rtx[v] = c.sender.Counters().Retransmits
	}
	if rtx[SACK] > rtx[NewReno] {
		t.Errorf("SACK retransmits %d > NewReno %d", rtx[SACK], rtx[NewReno])
	}
	if rtx[SACK] > rtx[Reno] {
		t.Errorf("SACK retransmits %d > Reno %d", rtx[SACK], rtx[Reno])
	}
	if rtx[SACK] != 3 {
		t.Errorf("SACK retransmits = %d, want exactly the 3 losses", rtx[SACK])
	}
}

// TestVariantTimeoutAvoidanceOrdering: on a triple-loss window, SACK and
// NewReno avoid the retransmission timeout entirely.
func TestVariantTimeoutAvoidanceOrdering(t *testing.T) {
	for _, v := range []Variant{NewReno, SACK} {
		c := newConn(t, v, nil)
		c.submit(60)
		c.run(t, 200*time.Millisecond)
		next := int64(c.fwd.dataSent())
		c.fwd.drop = dropSeqOnce(next, next+1, next+2)
		c.submit(140)
		c.run(t, 900*time.Millisecond) // under the 1s initial RTO
		if got := c.sender.Counters().Timeouts; got != 0 {
			t.Errorf("%v: %d timeouts on a triple-loss window, want 0", v, got)
		}
	}
}
