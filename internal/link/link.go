// Package link models unidirectional store-and-forward links: packets are
// serialized at the link rate, buffered at the egress by a queueing
// discipline while the link is busy, and delivered after a fixed propagation
// delay. A full-duplex connection is a pair of links.
package link

import (
	"fmt"

	"tcpburst/internal/packet"
	"tcpburst/internal/queue"
	"tcpburst/internal/sim"
	"tcpburst/internal/telemetry"
)

// Receiver consumes packets delivered by a link.
type Receiver interface {
	Receive(p *packet.Packet)
}

// Config describes one unidirectional link.
type Config struct {
	// Name labels the link in traces, e.g. "gw->server".
	Name string
	// RateBps is the transmission rate in bits per second.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Duration
	// Queue buffers packets while the transmitter is busy. Required.
	Queue queue.Discipline
	// Dst receives packets after serialization plus propagation. Required.
	Dst Receiver
	// LossProb, when positive, drops each serialized packet on the wire
	// with this probability — random (non-congestive) loss such as bit
	// errors on a wireless hop. Requires LossRNG.
	LossProb float64
	// LossRNG supplies the loss coin flips; required iff LossProb > 0.
	LossRNG *sim.RNG
	// Pool, when non-nil, receives packets the link consumes: queue drops
	// (after the OnDrop hook runs) and wire losses. A nil Pool leaves
	// consumed packets to the garbage collector.
	Pool *packet.Pool
	// Metrics holds preregistered telemetry handles the link publishes
	// into on its hot path; the zero value disables publication. The
	// experiment harness attaches handles to the bottleneck link only.
	Metrics Metrics
	// Lane, when non-nil, is the link's ordinal stream in the canonical
	// event order: delivery events draw their same-instant tie-break from
	// it instead of the scheduler's default lane. Sharded runs require it —
	// the ordinal is what lets a crossing land in the destination shard's
	// queue exactly where the serial schedule would have put it. A nil
	// Lane falls back to the default lane (fine for standalone links).
	Lane *sim.Lane
	// XDeliver, when non-nil, routes deliveries to another shard: instead
	// of scheduling locally, the link hands the delivery instant, its
	// Lane ordinal, and the packet to this hook, which buffers it for
	// injection into the destination scheduler at the next window barrier.
	// Requires Lane. Serialization, queueing, and drop accounting still
	// happen locally — only the delivery event crosses.
	XDeliver func(at sim.Time, ord uint64, p *packet.Packet)
	// DisableBatching forces one scheduled event per delivery and
	// disables the idle-transmitter FIFO fast path — the debug escape
	// hatch for bisecting burst-train coalescing. Results are
	// bit-identical either way (pinned by the batching equivalence
	// tests); only the scheduler-op count differs.
	DisableBatching bool
	// Overprovisioned declares a builder-verified invariant: the queue
	// capacity exceeds any occupancy the traffic wired into this link can
	// reach, so the discipline never drops. On a loss-free FIFO link with
	// batching enabled, local delivery, a private Lane, and no
	// time-sampled departure telemetry, the guarantee unlocks
	// serialization pipelining — the
	// per-packet serialize-done event is elided and the whole
	// store-and-forward pipeline is computed at admission (see DESIGN.md
	// §12 for why this is exact). The link panics if the guarantee is
	// ever violated, so a wrong declaration fails loudly instead of
	// silently diverging from the per-event schedule.
	Overprovisioned bool
}

// Metrics bundles the telemetry handles a link publishes when attached.
type Metrics struct {
	// Arrivals, Drops and Departures mirror the Stats counters.
	Arrivals   telemetry.Counter
	Drops      telemetry.Counter
	Departures telemetry.Counter
	// QueueDepth observes the egress queue length after each admitted
	// arrival — the occupancy distribution at enqueue instants.
	QueueDepth telemetry.Histogram
}

// Stats aggregates link counters.
type Stats struct {
	// Arrivals counts packets offered to the link (before any drop).
	Arrivals uint64
	// Drops counts packets rejected by the queueing discipline.
	Drops uint64
	// Departures counts packets fully serialized onto the wire.
	Departures uint64
	// DeliveredBytes counts wire bytes of departed packets.
	DeliveredBytes uint64
	// WireLosses counts packets lost to random (LossProb) wire errors
	// after serialization; they are included in Departures.
	WireLosses uint64
}

// Link is a unidirectional serializing link.
type Link struct {
	sched *sim.Scheduler
	cfg   Config

	busy  bool
	stats Stats

	// inflight is the packet currently being serialized. Exactly one
	// packet occupies the transmitter at a time, so a single field (plus
	// the prebound callbacks below) replaces a heap-allocated closure per
	// departure.
	inflight        *packet.Packet
	serializeDoneFn func()    // prebound l.serializeDone
	deliverFn       func(any) // prebound l.deliver

	// train coalesces back-to-back deliveries into one scheduled event
	// (nil when batching is disabled or deliveries cross shards).
	train *sim.Train
	// fastFIFO is the queue downcast to the plain FIFO discipline, when
	// that is what it is; it enables the idle-transmitter bypass in Send.
	fastFIFO *queue.FIFO

	// Serialization pipelining (virtual drain). When virtual is set,
	// Send computes the packet's entire store-and-forward pipeline at
	// admission — transmission start, completion, and delivery instants
	// follow the deterministic FIFO recurrence start = max(now,
	// busyUntil) — and schedules only the delivery. The serialize-done
	// event is elided: its count is credited at delivery (CreditFired)
	// and its Departures accounting settles there too, so every
	// externally visible outcome matches the per-event schedule exactly.
	// vBuf is a ring of the admitted-but-unsettled pipeline entries with
	// three monotone cursors into it: vStarted trails packets whose
	// transmission has begun (drained lazily at each Send; the remainder
	// is the logical queue depth), vCredited trails fired deliveries.
	virtual    bool
	vBuf       []vEntry
	vMask      uint64
	vAppended  uint64
	vStarted   uint64
	vCredited  uint64
	vBusyUntil sim.Time

	// lastSize/lastDelay memoize the serialization-delay division: a link
	// carries at most a couple of distinct packet sizes (data and ACK),
	// so the float computation almost always short-circuits to a load.
	lastSize  int
	lastDelay sim.Duration

	// onArrival, if set, observes every packet offered to the link before
	// the queue admission decision. The gateway metrics tap hangs here.
	onArrival func(now sim.Time, p *packet.Packet)
	// onDrop, if set, observes every packet the discipline rejects.
	onDrop func(now sim.Time, p *packet.Packet)
}

// New returns a link bound to the scheduler, or an error for an invalid
// configuration.
func New(sched *sim.Scheduler, cfg Config) (*Link, error) {
	switch {
	case sched == nil:
		return nil, fmt.Errorf("link %q: nil scheduler", cfg.Name)
	case cfg.RateBps <= 0:
		return nil, fmt.Errorf("link %q: rate %v <= 0", cfg.Name, cfg.RateBps)
	case cfg.Delay < 0:
		return nil, fmt.Errorf("link %q: negative delay %v", cfg.Name, cfg.Delay)
	case cfg.Queue == nil:
		return nil, fmt.Errorf("link %q: nil queue", cfg.Name)
	case cfg.Dst == nil:
		return nil, fmt.Errorf("link %q: nil destination", cfg.Name)
	case cfg.LossProb < 0 || cfg.LossProb >= 1:
		return nil, fmt.Errorf("link %q: loss probability %v outside [0,1)", cfg.Name, cfg.LossProb)
	case cfg.LossProb > 0 && cfg.LossRNG == nil:
		return nil, fmt.Errorf("link %q: loss probability without RNG", cfg.Name)
	case cfg.XDeliver != nil && cfg.Lane == nil:
		return nil, fmt.Errorf("link %q: cross-shard delivery without a lane", cfg.Name)
	}
	l := &Link{sched: sched, cfg: cfg}
	l.serializeDoneFn = l.serializeDone
	l.deliverFn = l.deliver
	if dd, ok := cfg.Queue.(queue.DequeueDropper); ok {
		// Disciplines that head-drop inside Dequeue (CoDel) consume packets
		// the Send path never sees rejected; route them through the same
		// drop accounting and pool reclamation an Enqueue rejection gets.
		dd.OnDequeueDrop(func(p *packet.Packet) {
			l.stats.Drops++
			l.cfg.Metrics.Drops.Inc()
			if l.onDrop != nil {
				l.onDrop(l.sched.Now(), p)
			}
			l.cfg.Pool.Put(p)
		})
	}
	if !cfg.DisableBatching {
		l.fastFIFO, _ = cfg.Queue.(*queue.FIFO)
		if cfg.XDeliver == nil {
			fn := l.deliverFn
			if l.fastFIFO != nil && cfg.Overprovisioned && cfg.Lane != nil &&
				cfg.LossProb == 0 &&
				!cfg.Metrics.Departures.Enabled() && !cfg.Metrics.QueueDepth.Enabled() {
				// Serialization pipelining needs every serialize-done
				// side effect to be provably absorbable: no drops
				// (Overprovisioned FIFO), no wire-loss RNG draw, no
				// cross-shard handoff, no time-sampled departure
				// telemetry whose snapshots could observe the elision,
				// and a private Lane — admission-time ordinals reorder
				// same-instant deliveries against other default-lane
				// events, but within a lane the link owns they are the
				// exact ordinals the per-event path would draw.
				l.virtual = true
				fn = l.deliverCredit
			}
			l.train = sim.NewTrain(sched, cfg.Lane, fn)
		}
	}
	return l, nil
}

// vEntry is one pipelined packet's elided serialization: transmission
// start, completion, and the wire bytes to settle at delivery.
type vEntry struct {
	start, done sim.Time
	size        int
}

// Name returns the link label.
func (l *Link) Name() string { return l.cfg.Name }

// Stats returns a copy of the link counters.
func (l *Link) Stats() Stats { return l.stats }

// QueueLen returns the instantaneous egress queue length in packets.
func (l *Link) QueueLen() int {
	if l.virtual {
		l.vDrain(l.sched.Now())
		return int(l.vAppended - l.vStarted)
	}
	return l.cfg.Queue.Len()
}

// Queue exposes the link's queueing discipline (for RED introspection).
func (l *Link) Queue() queue.Discipline { return l.cfg.Queue }

// OnArrival registers fn to observe every packet offered to the link,
// before queue admission. Passing nil clears the hook.
func (l *Link) OnArrival(fn func(now sim.Time, p *packet.Packet)) { l.onArrival = fn }

// OnDrop registers fn to observe every packet the discipline rejects.
func (l *Link) OnDrop(fn func(now sim.Time, p *packet.Packet)) { l.onDrop = fn }

// Send offers p to the link. If the transmitter is idle and the queue
// admits the packet, serialization starts immediately; otherwise the packet
// waits in the queue or is dropped by the discipline.
func (l *Link) Send(p *packet.Packet) {
	now := l.sched.Now()
	l.stats.Arrivals++
	l.cfg.Metrics.Arrivals.Inc()
	if l.onArrival != nil {
		l.onArrival(now, p)
	}
	if l.virtual {
		l.vSend(now, p)
		return
	}
	if l.fastFIFO != nil && !l.busy {
		// Idle-transmitter FIFO bypass: when the transmitter is idle the
		// FIFO is empty (transmitNext drains it before clearing busy) and
		// capacity ≥ 1 always admits into an empty FIFO, so the
		// enqueue/dequeue round trip through the ring is pure overhead.
		// The depth histogram observes the same length (1) the per-packet
		// path records after its enqueue. Not taken for RED (every
		// enqueue is an EWMA update plus a possible RNG coin) or DRR
		// (every enqueue moves the deficit state machine).
		if l.cfg.Metrics.QueueDepth.Enabled() {
			l.cfg.Metrics.QueueDepth.Observe(1)
		}
		l.startTransmit(p)
		return
	}
	if !l.cfg.Queue.Enqueue(now, p) {
		l.stats.Drops++
		l.cfg.Metrics.Drops.Inc()
		if l.onDrop != nil {
			l.onDrop(now, p)
		}
		l.cfg.Pool.Put(p)
		return
	}
	if l.cfg.Metrics.QueueDepth.Enabled() {
		l.cfg.Metrics.QueueDepth.Observe(float64(l.cfg.Queue.Len()))
	}
	if !l.busy {
		l.transmitNext()
	}
}

// transmitNext pulls the head-of-line packet and clocks it onto the wire.
func (l *Link) transmitNext() {
	p := l.cfg.Queue.Dequeue(l.sched.Now())
	if p == nil {
		l.busy = false
		return
	}
	l.startTransmit(p)
}

// startTransmit clocks p onto the wire.
func (l *Link) startTransmit(p *packet.Packet) {
	l.busy = true
	l.inflight = p
	if p.Size != l.lastSize {
		l.lastSize = p.Size
		l.lastDelay = sim.SerializationDelay(p.Size, l.cfg.RateBps)
	}
	l.sched.After(l.lastDelay, l.serializeDoneFn)
}

// serializeDone fires when the inflight packet's last bit leaves the
// transmitter: count the departure, launch propagation (or lose the packet
// on the wire), and start serializing the next queued packet.
func (l *Link) serializeDone() {
	p := l.inflight
	l.inflight = nil
	l.stats.Departures++
	l.cfg.Metrics.Departures.Inc()
	l.stats.DeliveredBytes += uint64(p.Size)
	if l.cfg.LossProb > 0 && l.cfg.LossRNG.Float64() < l.cfg.LossProb {
		// Lost on the wire: it consumed transmission time but
		// never arrives.
		l.stats.WireLosses++
		l.cfg.Pool.Put(p)
	} else if l.cfg.XDeliver != nil {
		// The destination lives on another shard: stamp the delivery
		// with this link's lane ordinal and hand it to the barrier.
		l.cfg.XDeliver(l.sched.Now().Add(l.cfg.Delay), l.cfg.Lane.Take(), p)
	} else if l.train != nil {
		// Burst-train coalescing: append the delivery to the link's
		// train instead of scheduling it. The train draws the same lane
		// ordinal the per-event path would, and only its head occupies
		// the scheduler — back-to-back departures of a burst collapse
		// into one wheel/heap op. A wire-lost packet above simply never
		// joins the train, which is how loss splits trains.
		l.train.Add(l.sched.Now().Add(l.cfg.Delay), p)
	} else {
		// The wire is pipelined: propagation of this packet
		// overlaps serialization of the next.
		l.sched.AfterCallOn(l.cfg.Lane, l.cfg.Delay, l.deliverFn, p)
	}
	l.transmitNext()
}

func (l *Link) deliver(arg any) {
	l.cfg.Dst.Receive(arg.(*packet.Packet))
}

// vSend admits p through the virtual pipeline: the FIFO recurrence
// start = max(now, busyUntil), done = start + serialization fixes every
// instant the per-event path would produce, so only the delivery is
// scheduled (via the train) and the serialize-done event is elided.
func (l *Link) vSend(now sim.Time, p *packet.Packet) {
	if !now.Before(l.vBusyUntil) {
		// Transmitter idle: the whole backlog has started (and finished)
		// serializing, so snap the depth cursor forward with one compare
		// instead of walking the ring. Bursty sources hit this on every
		// inter-burst gap, which also keeps the ring from growing.
		l.vStarted = l.vAppended
	} else if int(l.vAppended-l.vStarted) >= l.fastFIFO.Cap() {
		// The un-drained span hit capacity. Usually the cursor is just
		// stale from a long busy streak — drain and retry.
		l.vDrain(now)
		if int(l.vAppended-l.vStarted) >= l.fastFIFO.Cap() {
			// The builder's Overprovisioned guarantee just failed: the
			// per-event schedule would have consulted drop-tail admission
			// here, which the pipeline cannot replay. Fail loudly rather
			// than diverge silently.
			//burst:alloc-ok panic message formatting on a violated-guarantee path that never returns
			panic(fmt.Sprintf("link %q: overprovisioned queue reached capacity %d",
				l.cfg.Name, l.fastFIFO.Cap()))
		}
	}
	start := now
	if l.vBusyUntil > now {
		start = l.vBusyUntil
	}
	if p.Size != l.lastSize {
		l.lastSize = p.Size
		l.lastDelay = sim.SerializationDelay(p.Size, l.cfg.RateBps)
	}
	done := start.Add(l.lastDelay)
	l.vBusyUntil = done
	// Departure accounting settles optimistically at admission, while the
	// stats cache line is hot from the arrival counters; FinishVirtual
	// subtracts the entries the horizon catches mid-serialization. The
	// delivery trampoline therefore never has to touch the (by then cold)
	// ring.
	l.stats.Departures++
	l.stats.DeliveredBytes += uint64(p.Size)
	l.vPush(vEntry{start: start, done: done, size: p.Size})
	l.train.Add(done.Add(l.cfg.Delay), p)
}

// vDrain advances the depth cursor past entries whose transmission has
// begun. Entries starting exactly at now count as started — the per-event
// schedule may order that serialize-done after the current event, but
// with drops impossible the one-packet slack is visible only to this
// drain's capacity assertion, not to any simulation outcome.
func (l *Link) vDrain(now sim.Time) {
	for l.vStarted < l.vAppended && !now.Before(l.vBuf[l.vStarted&l.vMask].start) {
		l.vStarted++
	}
}

// vPush appends an entry, growing the ring when the span between the
// slowest cursor and the tail fills it.
func (l *Link) vPush(e vEntry) {
	head := l.vStarted
	if l.vCredited < head {
		head = l.vCredited
	}
	if l.vAppended-head == uint64(len(l.vBuf)) {
		// Slots are lazy like the queue rings: the first push allocates a
		// small ring, and growth doubles it, so idle links cost nothing.
		size := len(l.vBuf) * 2
		if size == 0 {
			size = 8
		}
		//burst:alloc-ok lazy virtual-slot ring growth is amortized doubling; idle links never allocate
		grown := make([]vEntry, size)
		mask := uint64(len(grown) - 1)
		for i := head; i < l.vAppended; i++ {
			grown[i&mask] = l.vBuf[i&l.vMask]
		}
		l.vBuf, l.vMask = grown, mask
	}
	l.vBuf[l.vAppended&l.vMask] = e
	l.vAppended++
}

// deliverCredit is the virtual pipeline's delivery trampoline: it settles
// the elided serialize-done's fired-event credit (the departure stats
// settled at admission), advances the credit cursor, and delivers.
// Deliveries fire in admission order, so the cursor walks the ring front
// to back without ever reading it.
func (l *Link) deliverCredit(arg any) {
	l.vCredited++
	l.sched.CreditFired()
	l.deliver(arg)
}

// FinishVirtual settles elided serializations still pending at the end of
// a run. Completions at or before horizon whose delivery events never
// fired (the packet was mid-propagation at cutoff) are returned as a
// count for the harness to add to SimEvents — the per-event schedule
// fired exactly those serialize-done events before the horizon. Entries
// the horizon catches mid-serialization are backed out of the departure
// stats, undoing vSend's optimistic settlement exactly where the
// per-event path would never have counted them. Call once, after the
// final Run; on links without the virtual pipeline it is a no-op
// returning zero.
func (l *Link) FinishVirtual(horizon sim.Time) uint64 {
	var n uint64
	for l.vCredited < l.vAppended {
		e := l.vBuf[l.vCredited&l.vMask]
		l.vCredited++
		if horizon.Before(e.done) {
			l.stats.Departures--
			l.stats.DeliveredBytes -= uint64(e.size)
		} else {
			n++
		}
	}
	return n
}

// DeliverFn exposes the link's prebound delivery trampoline (it calls
// Dst.Receive on its argument). The sharded harness injects it into the
// destination shard's scheduler for cross-shard deliveries; it reads only
// immutable link configuration, so executing it on another shard is safe.
func (l *Link) DeliverFn() func(any) { return l.deliverFn }
