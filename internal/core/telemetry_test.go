package core

import (
	"context"
	"encoding/json"

	"reflect"
	"sync"
	"testing"
	"time"

	"tcpburst/internal/runcache"
	"tcpburst/internal/telemetry"
)

// telemetryTestConfig is a short Reno/FIFO run with telemetry on.
func telemetryTestConfig(n int) Config {
	return Config{
		Clients: n, Protocol: Reno, Gateway: FIFO,
		Duration:          5 * time.Second,
		TelemetryInterval: 100 * time.Millisecond,
	}
}

// TestTelemetryDoesNotPerturbResults: sampling is read-only, so a run with
// telemetry enabled reports the same physics as the same run without it.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	plain, err := Run(Config{Clients: 10, Protocol: Reno, Gateway: FIFO, Duration: 5 * time.Second})
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	cfg := telemetryTestConfig(10)
	instrumented, err := Run(cfg)
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	ps, is := plain.Summary(), instrumented.Summary()
	// The snapshot ticks are extra (read-only) kernel events, so the event
	// count legitimately differs; the physics must not.
	is.TelemetryRecords, ps.SimEvents, is.SimEvents = 0, 0, 0
	if !reflect.DeepEqual(ps, is) {
		t.Errorf("telemetry perturbed the run:\nplain:        %+v\ninstrumented: %+v", ps, is)
	}
}

// TestTelemetryRingRecords checks the sampler contract end to end: a run
// without an explicit sink lands floor(duration/interval)+1 snapshots in
// Result.TelemetryRing with strictly increasing timestamps, and the final
// registry export agrees with the simulation's own counters.
func TestTelemetryRingRecords(t *testing.T) {
	cfg := telemetryTestConfig(6)
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := uint64(cfg.Duration/cfg.TelemetryInterval) + 1 // t=0 plus one per tick
	if res.TelemetryRecords != want {
		t.Errorf("TelemetryRecords = %d, want %d", res.TelemetryRecords, want)
	}
	ring := res.TelemetryRing
	if ring == nil {
		t.Fatal("no TelemetryRing on a sinkless telemetry run")
	}
	if uint64(ring.Count()) != want {
		t.Errorf("ring Count = %d, want %d", ring.Count(), want)
	}
	prev := -1.0
	for i := 0; i < ring.Len(); i++ {
		ts, _ := ring.At(i)
		if ts <= prev {
			t.Fatalf("record %d timestamp %v not strictly increasing after %v", i, ts, prev)
		}
		prev = ts
	}
	// The stream's final gw.arrivals must match the link's own counter sum
	// (every data packet and ACK arriving at the bottleneck queue).
	if res.Telemetry == nil {
		t.Fatal("no Telemetry export")
	}
	if got := res.Telemetry.Counters["tcp.delivered"]; got != res.Delivered {
		t.Errorf("telemetry tcp.delivered = %d, result Delivered = %d", got, res.Delivered)
	}
	if got := res.Telemetry.Counters["app.generated"]; got != res.Generated {
		t.Errorf("telemetry app.generated = %d, result Generated = %d", got, res.Generated)
	}
	if got := res.Telemetry.Counters["gw.drops"]; got != res.BottleneckDrops {
		t.Errorf("telemetry gw.drops = %d, result BottleneckDrops = %d", got, res.BottleneckDrops)
	}
	last := ring.Len() - 1
	if ring.Value(last, "sim.events") <= 0 {
		t.Error("sim.events probe never advanced")
	}
	if ring.FieldIndex("cwnd.client1") < 0 || ring.FieldIndex("ssthresh.client1") < 0 {
		t.Errorf("per-flow window probes missing from fields %v", ring.Fields())
	}
}

// TestTelemetryParallelSweep exercises concurrent instrumented runs — under
// -race this is the data-race guard for the whole telemetry path. Each
// config gets its own ring sink; every run must deliver the exact expected
// record count with strictly increasing timestamps.
func TestTelemetryParallelSweep(t *testing.T) {
	const runs = 8
	cfgs := make([]Config, runs)
	rings := make([]*telemetry.Ring, runs)
	for i := range cfgs {
		cfg := telemetryTestConfig(4 + i)
		rings[i] = telemetry.NewRing(256)
		cfg.TelemetrySink = rings[i]
		cfgs[i] = cfg
	}
	results, stats, err := RunBatch(context.Background(), cfgs, ExecOptions{Jobs: 4})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	want := uint64(cfgs[0].Duration/cfgs[0].TelemetryInterval) + 1
	if stats.TelemetryRecords != want*runs {
		t.Errorf("stats.TelemetryRecords = %d, want %d", stats.TelemetryRecords, want*runs)
	}
	for i, res := range results {
		if res.TelemetryRecords != want {
			t.Errorf("run %d: %d records, want %d", i, res.TelemetryRecords, want)
		}
		prev := -1.0
		for j := 0; j < rings[i].Len(); j++ {
			ts, _ := rings[i].At(j)
			if ts <= prev {
				t.Fatalf("run %d record %d: timestamp %v not increasing", i, j, ts)
			}
			prev = ts
		}
	}
}

// TestStaleSchemaVersionIsMiss: a cache entry stored under an older summary
// schema must be re-run, not silently decoded.
func TestStaleSchemaVersionIsMiss(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfg := Config{Clients: 6, Protocol: Reno, Gateway: FIFO, Duration: 5 * time.Second}
	ctx := context.Background()

	res, _, err := RunBatch(ctx, []Config{cfg}, ExecOptions{Jobs: 1, Cache: store})
	if err != nil {
		t.Fatalf("cold RunBatch: %v", err)
	}

	// Rewrite the stored entry as if an older binary had written it.
	key, err := runcache.Key(resultCacheKind(cfg.WithDefaults()), cfg.WithDefaults())
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	s := res[0].Summary()
	s.SchemaVersion = 1
	stale, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal stale summary: %v", err)
	}
	if err := store.Put(key, stale); err != nil {
		t.Fatalf("Put stale entry: %v", err)
	}

	_, stats, err := RunBatch(ctx, []Config{cfg}, ExecOptions{Jobs: 1, Cache: store})
	if err != nil {
		t.Fatalf("warm RunBatch: %v", err)
	}
	if stats.Ran != 1 || stats.Cached != 0 {
		t.Errorf("stale-schema stats = %+v, want a fresh run (stale entries are misses)", stats)
	}

	// The fresh run overwrote the entry; the next pass hits.
	_, stats, err = RunBatch(ctx, []Config{cfg}, ExecOptions{Jobs: 1, Cache: store})
	if err != nil {
		t.Fatalf("third RunBatch: %v", err)
	}
	if stats.Cached != 1 {
		t.Errorf("post-refresh stats = %+v, want a cache hit", stats)
	}
}

// TestRunBatchConcurrentWriters: two RunBatch calls racing on one store —
// the same jobs, cold — must both succeed; the rename race inside
// runcache.Put resolves to whichever writer lands first, since keys are
// content addresses.
func TestRunBatchConcurrentWriters(t *testing.T) {
	store, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = Config{Clients: 4 + i, Protocol: Reno, Gateway: FIFO, Duration: 5 * time.Second}
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	sums := make([][]Summary, 2)
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := RunBatch(ctx, cfgs, ExecOptions{Jobs: 2, Cache: store})
			if err != nil {
				errs[w] = err
				return
			}
			for _, r := range res {
				sums[w] = append(sums[w], r.Summary())
			}
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if !reflect.DeepEqual(sums[0], sums[1]) {
		t.Errorf("concurrent writers disagree:\n%+v\nvs\n%+v", sums[0], sums[1])
	}
	if n, _ := store.Len(); n != len(cfgs) {
		t.Errorf("store Len = %d, want %d", n, len(cfgs))
	}
	_, stats, err := RunBatch(ctx, cfgs, ExecOptions{Jobs: 2, Cache: store})
	if err != nil {
		t.Fatalf("warm RunBatch: %v", err)
	}
	if stats.Cached != len(cfgs) {
		t.Errorf("warm stats = %+v, want all cached", stats)
	}
}

// TestNewConfigDefaultsAndValidation: the options constructor produces the
// same configuration as the defaulted struct literal, and surfaces
// validation errors instead of deferring them to Run.
func TestNewConfigDefaultsAndValidation(t *testing.T) {
	got, err := NewConfig(WithClients(39), WithProtocol(Vegas), WithGateway(RED), WithSeed(7))
	if err != nil {
		t.Fatalf("NewConfig: %v", err)
	}
	want := DefaultConfig(39, Vegas, RED)
	want.Seed = 7
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NewConfig != DefaultConfig:\ngot:  %+v\nwant: %+v", got, want)
	}

	if _, err := NewConfig(WithProtocol(Reno)); err == nil {
		t.Error("NewConfig with zero clients validated; want error")
	}
	if _, err := NewConfig(WithClients(10), WithTelemetry(-time.Second)); err == nil {
		t.Error("NewConfig with negative telemetry interval validated; want error")
	}

	// BaseConfig applies options verbatim — no defaults, no validation —
	// for sweep templates whose client count is filled per run.
	base := BaseConfig(WithDuration(10*time.Second), WithWireLoss(0.01))
	if base.Clients != 0 || base.Duration != 10*time.Second || base.WireLossProb != 0.01 {
		t.Errorf("BaseConfig mutated beyond its options: %+v", base)
	}
}

// TestConfigLabel pins the label format shared by progress lines and
// per-run telemetry streams.
func TestConfigLabel(t *testing.T) {
	cfg := MustConfig(WithClients(45), WithCell(Cell{Protocol: Reno, Gateway: RED}), WithSeed(3))
	if got, want := cfg.Label(), "reno/red n=45 seed=3"; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}

// TestTelemetrySinkFactoryLabelsRuns: a sweep streaming every run onto one
// writer distinguishes runs via the factory's per-config label.
func TestTelemetrySinkFactoryLabelsRuns(t *testing.T) {
	var buf syncBuffer
	sw := telemetry.NewSyncWriter(&buf)
	cfgs := []Config{telemetryTestConfig(4), telemetryTestConfig(5)}
	for i := range cfgs {
		cfgs[i].TelemetrySinkFactory = func(c Config) telemetry.Sink {
			return telemetry.NewJSONLRun(sw, c.Label())
		}
	}
	if _, _, err := RunBatch(context.Background(), cfgs, ExecOptions{Jobs: 2}); err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	perRun := map[string]int{}
	for _, line := range splitLines(buf.String()) {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved or torn JSONL line %q: %v", line, err)
		}
		run, _ := rec["run"].(string)
		perRun[run]++
	}
	want := int(cfgs[0].Duration/cfgs[0].TelemetryInterval) + 1
	for _, cfg := range cfgs {
		// The factory sees the defaulted config, so labels carry the
		// defaulted seed.
		label := cfg.WithDefaults().Label()
		if perRun[label] != want {
			t.Errorf("run %q has %d records, want %d (per-run counts: %v)",
				label, perRun[label], want, perRun)
		}
	}
}

// syncBuffer is a mutex-guarded strings.Builder for concurrent writers.
type syncBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.b = append(b.b, p...)
	return len(p), nil
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.b)
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		if i > 0 {
			out = append(out, s[:i])
		}
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}
