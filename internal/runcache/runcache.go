// Package runcache is a content-addressed on-disk result store: values are
// keyed by the SHA-256 of their canonical JSON encoding, so any two
// byte-identical configurations share one cache entry and any change to a
// configuration — or to the Go type it is encoded from — produces a fresh
// key. The experiment runner uses it to skip simulations whose defaulted
// config has already been run (see internal/runner and core.RunBatch).
//
// Entries are plain JSON files sharded by key prefix under one directory
// (default ~/.cache/tcpburst), written atomically via rename, so a store
// can be shared by concurrent processes and survives crashes with at worst
// a missing entry.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is an on-disk cache rooted at one directory. The zero value is not
// usable; construct with Open. All methods are safe for concurrent use by
// multiple goroutines and processes.
type Store struct {
	dir string
}

// DefaultDir returns the per-user cache root, ~/.cache/tcpburst on Linux
// (following os.UserCacheDir), falling back to the system temp directory
// when no user cache location is defined.
func DefaultDir() string {
	if base, err := os.UserCacheDir(); err == nil && base != "" {
		return filepath.Join(base, "tcpburst")
	}
	return filepath.Join(os.TempDir(), "tcpburst-cache")
}

// Open creates (if needed) and returns the store rooted at dir; an empty
// dir selects DefaultDir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		dir = DefaultDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Key hashes a value into its cache address: SHA-256 over the value's JSON
// encoding, prefixed by a caller-chosen kind ("result/v1", "chain/v1", ...)
// so distinct result types can never collide even if their configs encode
// identically. encoding/json emits struct fields in declaration order and
// map keys sorted, so the encoding — and therefore the key — is stable for
// a given Go type.
func Key(kind string, v any) (string, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("runcache: encode key: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(raw)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// path shards entries two hex digits deep to keep directory listings sane
// at production sweep volumes.
func (s *Store) path(key string) string {
	if len(key) < 2 {
		return filepath.Join(s.dir, "_", key+".json")
	}
	return filepath.Join(s.dir, key[:2], key[2:]+".json")
}

// Get returns the stored bytes for key and whether the entry exists. A
// missing entry is (nil, false, nil); read failures other than absence are
// reported so callers can choose to treat them as misses.
func (s *Store) Get(key string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("runcache: get %s: %w", key, err)
	}
	return data, true, nil
}

// Put stores data under key atomically: the bytes land in a temp file in
// the destination shard and are renamed into place, so concurrent readers
// see either the old entry, the new one, or none — never a torn write.
func (s *Store) Put(key string, data []byte) error {
	dst := s.path(key)
	shard := filepath.Dir(dst)
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("runcache: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(shard, ".tmp-*")
	if err != nil {
		return fmt.Errorf("runcache: put %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runcache: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runcache: put %s: %w", key, err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		os.Remove(tmpName)
		// Keys are content addresses, so a concurrent writer that won the
		// rename race stored byte-identical data: an existing destination
		// means the put succeeded, whoever performed it.
		if _, statErr := os.Stat(dst); statErr == nil {
			return nil
		}
		return fmt.Errorf("runcache: put %s: %w", key, err)
	}
	return nil
}

// Len walks the store and counts entries — intended for tests and the
// -stats telemetry, not hot paths.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("runcache: len: %w", err)
	}
	return n, nil
}
