package transport

import (
	"fmt"

	"tcpburst/internal/packet"
	"tcpburst/internal/sim"
	"tcpburst/internal/stats"
)

// UDPConfig describes one UDP sending endpoint.
type UDPConfig struct {
	// Flow identifies the conversation.
	Flow packet.FlowID
	// Src and Dst are the endpoint addresses.
	Src, Dst packet.Addr
	// PacketSize is the wire size of each datagram in bytes.
	PacketSize int
	// Out carries packets toward Dst. Required.
	Out Wire
	// Now, when set, stamps each datagram's SentAt for delay measurement.
	Now func() sim.Time
	// Pool, when non-nil, supplies outbound datagrams and reclaims any
	// packet delivered back to the sender.
	Pool *packet.Pool
}

// UDPSender transmits each submitted application packet immediately; it is
// the paper's control protocol showing that, without congestion control,
// aggregate traffic keeps the application traffic's statistics.
type UDPSender struct {
	cfg  UDPConfig
	next int64
	sent uint64
}

var (
	_ Source = (*UDPSender)(nil)
	_ Agent  = (*UDPSender)(nil)
)

// NewUDPSender returns a sender, or an error for an invalid configuration.
func NewUDPSender(cfg UDPConfig) (*UDPSender, error) {
	if cfg.Out == nil {
		return nil, fmt.Errorf("udp flow %d: nil wire", cfg.Flow)
	}
	if cfg.PacketSize <= 0 {
		return nil, fmt.Errorf("udp flow %d: packet size %d <= 0", cfg.Flow, cfg.PacketSize)
	}
	return &UDPSender{cfg: cfg}, nil
}

// Submit sends one datagram immediately.
func (u *UDPSender) Submit() {
	p := u.cfg.Pool.Get()
	p.Kind = packet.Data
	p.Flow = u.cfg.Flow
	p.Src = u.cfg.Src
	p.Dst = u.cfg.Dst
	p.Seq = u.next
	p.Size = u.cfg.PacketSize
	if u.cfg.Now != nil {
		p.SentAt = u.cfg.Now()
	}
	u.next++
	u.sent++
	u.cfg.Out.Send(p)
}

// Sent returns the number of datagrams transmitted.
func (u *UDPSender) Sent() uint64 { return u.sent }

// Receive consumes inbound packets without acting on them: UDP has no
// acknowledgments.
func (u *UDPSender) Receive(p *packet.Packet) { u.cfg.Pool.Put(p) }

// UDPSink counts datagrams delivered to the receiving application and,
// when built with a clock, measures their one-way delays.
type UDPSink struct {
	delivered uint64
	now       func() sim.Time
	delays    stats.DelayDist
	pool      *packet.Pool
}

var _ Agent = (*UDPSink)(nil)

// NewUDPSink returns a sink that only counts deliveries.
func NewUDPSink() *UDPSink { return &UDPSink{} }

// NewUDPSinkWithClock returns a sink that additionally samples one-way
// delays using the given clock.
func NewUDPSinkWithClock(now func() sim.Time) *UDPSink {
	return &UDPSink{now: now}
}

// SetPool makes the sink return consumed datagrams to pl. The sink is the
// datagram's consumption point, mirroring the TCP sink.
func (s *UDPSink) SetPool(pl *packet.Pool) { s.pool = pl }

// Receive counts one delivered datagram.
func (s *UDPSink) Receive(p *packet.Packet) {
	if !p.IsData() {
		s.pool.Put(p)
		return
	}
	s.delivered++
	if s.now != nil {
		s.delays.Observe(s.now().Sub(p.SentAt).Seconds())
	}
	s.pool.Put(p)
}

// Delivered returns the number of datagrams received.
func (s *UDPSink) Delivered() uint64 { return s.delivered }

// Delays returns the one-way delay statistics (empty without a clock).
func (s *UDPSink) Delays() *stats.DelayDist { return &s.delays }
