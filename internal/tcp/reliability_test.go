package tcp

import (
	"fmt"
	"testing"
	"time"

	"tcpburst/internal/packet"
	"tcpburst/internal/sim"
)

// lossyDrop drops data packets (and optionally ACKs) with probability p.
func lossyDrop(rng *sim.RNG, p float64, dropAcks bool) func(*packet.Packet) bool {
	return func(pkt *packet.Packet) bool {
		if pkt.IsAck() && !dropAcks {
			return false
		}
		return rng.Float64() < p
	}
}

// orderedSink wraps deliveries to assert strict in-order, exactly-once
// delivery at the application boundary.
type orderTracker struct {
	next int64
	bad  bool
}

// TestReliableInOrderDeliveryUnderRandomLoss is the core transport
// invariant: every variant must deliver every packet exactly once, in
// order, for a range of loss rates and seeds, on both the data and the ACK
// path.
func TestReliableInOrderDeliveryUnderRandomLoss(t *testing.T) {
	variants := []Variant{Tahoe, Reno, NewReno, Vegas}
	lossRates := []float64{0.01, 0.05, 0.2}
	for _, v := range variants {
		for _, rate := range lossRates {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/loss%.0f%%/seed%d", v, rate*100, seed)
				t.Run(name, func(t *testing.T) {
					c := newConn(t, v, nil)
					rng := sim.NewRNG(seed)
					c.fwd.drop = lossyDrop(rng.Fork(1), rate, false)
					c.rev.drop = lossyDrop(rng.Fork(2), rate/2, true)
					const n = 150
					c.submit(n)
					c.run(t, 10*time.Minute)
					if got := c.sink.Delivered(); got != n {
						t.Fatalf("delivered %d, want %d", got, n)
					}
					if got := c.sink.RcvNxt(); got != n {
						t.Fatalf("rcvNxt = %d, want %d", got, n)
					}
					if f := c.sender.FlightSize(); f != 0 {
						t.Errorf("flight = %d after full delivery", f)
					}
				})
			}
		}
	}
}

// TestSequencesDeliveredInOrder verifies the sink never hands the
// application a gap or regression even while the wire reorders nothing but
// losses force retransmissions.
func TestSequencesDeliveredInOrder(t *testing.T) {
	c := newConn(t, Reno, nil)
	rng := sim.NewRNG(7)
	c.fwd.drop = lossyDrop(rng, 0.1, false)

	// Track the sink's advancement after every event step: RcvNxt and
	// Delivered must advance together and never regress.
	lastNxt := int64(0)
	c.submit(300)
	deadline := sim.TimeZero.Add(10 * time.Minute)
	tracker := orderTracker{}
	for c.sched.Now() < deadline {
		if !c.sched.Step() {
			break
		}
		nxt := c.sink.RcvNxt()
		if nxt < lastNxt {
			tracker.bad = true
			break
		}
		if uint64(nxt) != c.sink.Delivered() {
			t.Fatalf("RcvNxt %d != Delivered %d", nxt, c.sink.Delivered())
		}
		lastNxt = nxt
	}
	if tracker.bad {
		t.Fatal("receive sequence regressed")
	}
	if c.sink.Delivered() != 300 {
		t.Fatalf("delivered %d, want 300", c.sink.Delivered())
	}
}

// TestConservationNoLoss: on a clean path, transmissions equal submissions
// (no spurious retransmits) across variants and workload shapes.
func TestConservationNoLoss(t *testing.T) {
	shapes := []struct {
		name  string
		drive func(c *conn, t *testing.T)
	}{
		{"bulk", func(c *conn, t *testing.T) {
			c.submit(400)
			c.run(t, 30*time.Second)
		}},
		{"trickle", func(c *conn, t *testing.T) {
			for i := 0; i < 100; i++ {
				c.submit(1)
				c.run(t, 7*time.Millisecond)
			}
			c.run(t, 5*time.Second)
		}},
		{"bursts", func(c *conn, t *testing.T) {
			for i := 0; i < 10; i++ {
				c.submit(30)
				c.run(t, 500*time.Millisecond)
			}
			c.run(t, 10*time.Second)
		}},
	}
	for _, v := range []Variant{Tahoe, Reno, NewReno, Vegas} {
		for _, shape := range shapes {
			t.Run(v.String()+"/"+shape.name, func(t *testing.T) {
				c := newConn(t, v, nil)
				shape.drive(c, t)
				cnt := c.sender.Counters()
				if cnt.DataSent != cnt.Submitted {
					t.Errorf("sent %d != submitted %d on clean path", cnt.DataSent, cnt.Submitted)
				}
				if c.sink.Delivered() != cnt.Submitted {
					t.Errorf("delivered %d != submitted %d", c.sink.Delivered(), cnt.Submitted)
				}
			})
		}
	}
}

// TestSpuriousTimeoutRecovery: if the RTO fires because ACKs were merely
// delayed (severed then restored path), the connection must still converge.
func TestPathSeveredThenRestored(t *testing.T) {
	c := newConn(t, Reno, nil)
	c.submit(100)
	c.run(t, 100*time.Millisecond)
	// Sever both directions for two seconds.
	c.fwd.drop = func(*packet.Packet) bool { return true }
	c.rev.drop = func(*packet.Packet) bool { return true }
	c.run(t, 2*time.Second)
	c.fwd.drop = nil
	c.rev.drop = nil
	c.run(t, 30*time.Second)
	if got := c.sink.Delivered(); got != 100 {
		t.Errorf("delivered %d after path restoration, want 100", got)
	}
	if got := c.sender.Counters().Timeouts; got == 0 {
		t.Error("no timeouts recorded despite a severed path")
	}
}
