// Package burstlint assembles the analyzer suite and runs it over loaded
// packages. cmd/burstlint is a thin CLI over this package so the repo's
// own tests can assert "the tree is clean" without shelling out.
package burstlint

import (
	"tcpburst/internal/analysis"
	"tcpburst/internal/analysis/floateq"
	"tcpburst/internal/analysis/load"
	"tcpburst/internal/analysis/nondeterminism"
	"tcpburst/internal/analysis/packetrelease"
	"tcpburst/internal/analysis/queuespec"
	"tcpburst/internal/analysis/shardownership"
	"tcpburst/internal/analysis/telemetryhandle"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		nondeterminism.Analyzer,
		packetrelease.Analyzer,
		shardownership.Analyzer,
		telemetryhandle.Analyzer,
		queuespec.Analyzer,
		floateq.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage runs the given analyzers (all of them when none are named)
// over one loaded package and returns position-resolved findings.
func RunPackage(pkg *load.Package, analyzers ...*analysis.Analyzer) ([]analysis.Finding, error) {
	if len(analyzers) == 0 {
		analyzers = Analyzers()
	}
	var findings []analysis.Finding
	for _, a := range analyzers {
		a := a
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
			func(d analysis.Diagnostic) {
				findings = append(findings, analysis.Finding{
					Analyzer: a.Name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			})
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	return findings, nil
}

// Check loads every package matching patterns (relative to dir) and runs
// the full suite, returning findings sorted by position.
func Check(dir string, patterns ...string) ([]analysis.Finding, error) {
	pkgs, err := load.Packages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	analysis.SortFindings(findings)
	return findings, nil
}
