package queue

import (
	"strings"
	"testing"
	"time"

	"tcpburst/internal/packet"
)

func codelConfig(mutate func(*CoDelConfig)) CoDelConfig {
	cfg := CoDelConfig{
		Capacity: 100,
		Target:   5 * time.Millisecond,
		Interval: 100 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func newCoDelT(t *testing.T, mutate func(*CoDelConfig)) *CoDel {
	t.Helper()
	q, err := NewCoDel(codelConfig(mutate))
	if err != nil {
		t.Fatalf("NewCoDel: %v", err)
	}
	return q
}

func TestCoDelConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*CoDelConfig)
		substr string
	}{
		{"zero capacity", func(c *CoDelConfig) { c.Capacity = 0 }, "capacity"},
		{"zero target", func(c *CoDelConfig) { c.Target = 0 }, "target"},
		{"zero interval", func(c *CoDelConfig) { c.Interval = 0 }, "interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCoDel(codelConfig(tc.mutate))
			if err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Errorf("NewCoDel error = %v, want mention of %q", err, tc.substr)
			}
		})
	}
}

// codelDrive runs the canonical standing-queue scenario: one enqueue per
// millisecond from t=0, one dequeue per millisecond from t=10ms, so the
// backlog holds at 10 packets and every head has waited 10ms — twice the
// 5ms target. It records the times (in ms) of head drops and of delivered
// packets that came out ECN-marked.
func codelDrive(q *CoDel, from, to int64) (dropsMS, marksMS []int64) {
	q.OnDequeueDrop(func(*packet.Packet) {})
	for t := from; t <= to; t++ {
		if t >= from+10 {
			before := q.earlyDrops
			p := q.Dequeue(now(t))
			if q.earlyDrops > before {
				dropsMS = append(dropsMS, t)
			}
			if p != nil && p.ECE {
				marksMS = append(marksMS, t)
			}
		}
		q.Enqueue(now(t), pkt(t))
	}
	return dropsMS, marksMS
}

// TestCoDelPinnedDropSequence pins the full drop schedule of the standing-
// queue scenario against the RFC 8289 control law, hand-computed:
//
//   - Sojourn first exceeds target at the first dequeue, t=10ms, arming the
//     interval clock at 10+100 = 110ms.
//   - Drop #1 fires at t=110ms (count=1), scheduling the next drop a full
//     interval later: drop #2 at t=210ms.
//   - Subsequent drops tighten as interval/sqrt(count) past the previous
//     deadline: 210+100/√2 = 280.71ms → t=281; +100/√3 → t=339;
//     +100/√4 → t=389; +100/√5 → t=434.
//   - Each drop consumes one extra packet, so the backlog shrinks 10 → 4;
//     at 4 packets the head sojourn (4ms) is finally below target, and the
//     dequeue after drop #6 leaves the dropping state.
func TestCoDelPinnedDropSequence(t *testing.T) {
	q := newCoDelT(t, nil)
	drops, marks := codelDrive(q, 0, 600)

	want := []int64{110, 210, 281, 339, 389, 434}
	if len(drops) != len(want) {
		t.Fatalf("drop times = %v ms, want %v", drops, want)
	}
	for i := range want {
		if drops[i] != want[i] {
			t.Fatalf("drop times = %v ms, want %v", drops, want)
		}
	}
	if len(marks) != 0 {
		t.Errorf("non-ECN queue delivered marked packets at %v ms", marks)
	}
	if q.Dropping() {
		t.Error("still in dropping state after backlog fell below target")
	}
	if q.earlyDrops != 6 || q.forcedDrops != 0 || q.marks != 0 {
		t.Errorf("counters early=%d forced=%d marks=%d, want 6/0/0",
			q.earlyDrops, q.forcedDrops, q.marks)
	}
}

// TestCoDelPinnedECNSequence replays the same scenario with ECN: heads are
// marked in place of dropped on the identical control-law schedule, but
// because marking does not shorten the queue the sojourn never recovers and
// marking continues past where the drop variant exited.
func TestCoDelPinnedECNSequence(t *testing.T) {
	q := newCoDelT(t, func(c *CoDelConfig) { c.ECN = true })
	drops, marks := codelDrive(q, 0, 600)

	want := []int64{110, 210, 281, 339, 389, 434, 474, 512, 548, 581}
	if len(marks) != len(want) {
		t.Fatalf("mark times = %v ms, want %v", marks, want)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("mark times = %v ms, want %v", marks, want)
		}
	}
	if len(drops) != 0 || q.earlyDrops != 0 {
		t.Errorf("ECN queue head-dropped at %v ms (early=%d), want none", drops, q.earlyDrops)
	}
	if !q.Dropping() {
		t.Error("left dropping state despite a standing 10ms sojourn")
	}
}

// TestCoDelResumesDropRate checks the RFC 8289 §4.3 heuristic: re-entering
// the dropping state shortly after leaving it resumes near the previous
// drop rate (count = delta) instead of restarting from one drop/interval.
func TestCoDelResumesDropRate(t *testing.T) {
	q := newCoDelT(t, nil)
	codelDrive(q, 0, 439) // phase 1: drops at 110..434, exits at backlog 4

	var drops []int64
	q.OnDequeueDrop(func(*packet.Packet) {})
	for i := int64(0); i < 12; i++ { // burst re-grows the backlog to 16
		q.Enqueue(now(440), pkt(1000+i))
	}
	for ts := int64(441); ts <= 630; ts++ {
		before := q.earlyDrops
		q.Dequeue(now(ts))
		if q.earlyDrops > before {
			drops = append(drops, ts)
		}
		q.Enqueue(now(ts), pkt(ts))
	}

	// Sojourn re-exceeds target at t=441, arming the clock for t=541. Phase
	// 1 ended with count=6, lastCount=1 → delta=5, and the previous deadline
	// (433.17ms) is well within 16 intervals, so the state resumes at
	// count=5: the drop after re-entry comes 100/√5 = 44.7ms later (t=586),
	// not a full interval later (t=641), and the next 100/√6 after (t=627).
	want := []int64{541, 586, 627}
	if len(drops) != len(want) {
		t.Fatalf("re-entry drop times = %v ms, want %v", drops, want)
	}
	for i := range want {
		if drops[i] != want[i] {
			t.Fatalf("re-entry drop times = %v ms, want %v", drops, want)
		}
	}
}

func TestCoDelNoDropsBelowTarget(t *testing.T) {
	q := newCoDelT(t, nil)
	// Backlog of 3: heads wait 3ms, under the 5ms target.
	for ts := int64(0); ts < 1000; ts++ {
		if ts >= 3 {
			if p := q.Dequeue(now(ts)); p == nil {
				t.Fatalf("empty queue at t=%dms", ts)
			}
		}
		q.Enqueue(now(ts), pkt(ts))
	}
	if q.earlyDrops != 0 || q.Dropping() {
		t.Errorf("early drops = %d, dropping = %v below target", q.earlyDrops, q.Dropping())
	}
}

func TestCoDelOverflowIsForcedDrop(t *testing.T) {
	q, err := NewCoDel(CoDelConfig{Capacity: 3, Target: time.Millisecond, Interval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if !q.Enqueue(0, pkt(i)) {
			t.Fatalf("enqueue %d rejected below capacity", i)
		}
	}
	if q.Enqueue(0, pkt(3)) {
		t.Error("enqueue beyond capacity accepted")
	}
	if q.forcedDrops != 1 {
		t.Errorf("forced drops = %d, want 1", q.forcedDrops)
	}
}

func TestCoDelStats(t *testing.T) {
	q := newCoDelT(t, nil)
	codelDrive(q, 0, 300)
	s := q.DisciplineStats()
	if s.EarlyDrops != q.earlyDrops || s.EarlyDrops == 0 {
		t.Errorf("stats early drops = %d, want %d (nonzero)", s.EarlyDrops, q.earlyDrops)
	}
	if got := s.FinalAvg; (got == 1) != q.Dropping() {
		t.Errorf("stats FinalAvg = %v with dropping = %v", got, q.Dropping())
	}
}
